//! The parallel split-evaluation engine.

use splitc_spanner::aot::{AotConfig, AotEvsa};
use splitc_spanner::dense::{DenseCache, DenseConfig, DenseEvsa};
use splitc_spanner::eval::eval_evsa;
use splitc_spanner::evsa::EVsa;
use splitc_spanner::prefilter::{PrefilterStats, PrefilteredEvsa};
use splitc_spanner::span::Span;
use splitc_spanner::splitter::Splitter;
use splitc_spanner::tuple::{SpanRelation, SpanTuple};
use splitc_spanner::vsa::Vsa;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A splitting function: documents to split spans. Native splitters
/// (`splitc_spanner::splitter::native`) are used on large corpora;
/// formal splitters can be wrapped via [`split_fn_of_splitter`].
pub type SplitFn = Arc<dyn Fn(&[u8]) -> Vec<Span> + Send + Sync>;

/// Wraps a formal (automaton) splitter as a [`SplitFn`].
pub fn split_fn_of_splitter(s: &Splitter) -> SplitFn {
    let compiled = s.compile();
    Arc::new(move |doc| compiled.split(doc))
}

/// Evaluation engine selection for [`ExecSpanner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Per-position NFA simulation over raw byte-set transitions.
    Nfa,
    /// Byte-class tables + memory-bounded lazy-DFA cache with exact NFA
    /// fallback (see [`splitc_spanner::dense`]). The default.
    #[default]
    Dense,
    /// The dense engine behind a literal prefilter: documents are gated
    /// by the spanner's required prefix / byte class / minimum match
    /// length, and lazy-DFA self-loops are crossed by a SWAR skip-loop
    /// (see [`splitc_spanner::prefilter`]). Falls back to plain dense
    /// behavior when the analysis finds nothing usable.
    Prefilter,
    /// Ahead-of-time tier: full determinization under a state budget,
    /// Hopcroft-minimized forward DFA, flat premultiplied `u16` tables
    /// stepped 4 bytes per iteration, composed with the prefilter gate
    /// and skip-loop (see [`splitc_spanner::aot`]). Tiering is automatic
    /// at compile time: when determinization exceeds the budget the
    /// spanner silently degrades to the lazy [`Engine::Dense`] tier —
    /// [`ExecSpanner::engine`] still reports `Aot` (the request),
    /// [`ExecSpanner::tier`] reports what actually compiled.
    Aot,
}

impl Engine {
    /// Stable lowercase name (as accepted by the bench `--engine` flag).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Nfa => "nfa",
            Engine::Dense => "dense",
            Engine::Prefilter => "prefilter",
            Engine::Aot => "aot",
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "nfa" => Ok(Engine::Nfa),
            "dense" => Ok(Engine::Dense),
            "prefilter" => Ok(Engine::Prefilter),
            "aot" => Ok(Engine::Aot),
            other => Err(format!(
                "unknown engine {other:?} (expected nfa|dense|prefilter|aot)"
            )),
        }
    }
}

/// The object-safe interface every evaluation engine sits behind.
///
/// Backends are the *core* engines — NFA simulation, dense lazy-DFA,
/// prefiltered dense — unified so that executors ([`crate::CorpusRunner`],
/// the fleet engine) dispatch through one vtable instead of matching on
/// engine variants. Scan *frontends* (a per-spanner literal gate, the
/// fleet's shared multi-needle scanner) are pluggable stages layered in
/// front of a backend: they may prove a document's relation empty and
/// skip the call entirely, but whenever they do call, the backend alone
/// determines the result — which is why fused and sequential evaluation
/// agree byte-for-byte.
///
/// All backends are exact (they produce the relation of
/// [`eval_evsa`]); they differ only in speed and in how much
/// caller-owned scratch they exploit.
pub trait EngineBackend: std::fmt::Debug + Send + Sync {
    /// The engine selection this backend implements.
    fn kind(&self) -> Engine;

    /// The compiled block-normal-form automaton.
    fn evsa(&self) -> &Arc<EVsa>;

    /// Evaluates one document with caller-owned scratch: a lazy-DFA
    /// cache and a prefilter-stats accumulator, typically one pair per
    /// worker thread. Backends that use neither (the NFA engine)
    /// ignore them.
    fn eval_scratch(
        &self,
        doc: &[u8],
        cache: &mut DenseCache,
        stats: &mut PrefilterStats,
    ) -> SpanRelation;

    /// Evaluates one document using backend-internal pooled scratch.
    fn eval_pooled(&self, doc: &[u8]) -> SpanRelation;
}

/// Per-position NFA simulation — no scratch, no compilation beyond the
/// eVSA itself.
#[derive(Debug)]
struct NfaBackend(Arc<EVsa>);

impl EngineBackend for NfaBackend {
    fn kind(&self) -> Engine {
        Engine::Nfa
    }
    fn evsa(&self) -> &Arc<EVsa> {
        &self.0
    }
    fn eval_scratch(
        &self,
        doc: &[u8],
        _cache: &mut DenseCache,
        _stats: &mut PrefilterStats,
    ) -> SpanRelation {
        eval_evsa(&self.0, doc)
    }
    fn eval_pooled(&self, doc: &[u8]) -> SpanRelation {
        eval_evsa(&self.0, doc)
    }
}

/// The dense lazy-DFA engine.
#[derive(Debug)]
struct DenseBackend(Arc<DenseEvsa>);

impl EngineBackend for DenseBackend {
    fn kind(&self) -> Engine {
        Engine::Dense
    }
    fn evsa(&self) -> &Arc<EVsa> {
        self.0.evsa_arc()
    }
    fn eval_scratch(
        &self,
        doc: &[u8],
        cache: &mut DenseCache,
        _stats: &mut PrefilterStats,
    ) -> SpanRelation {
        self.0.eval_with(doc, cache)
    }
    fn eval_pooled(&self, doc: &[u8]) -> SpanRelation {
        self.0.eval(doc)
    }
}

/// The dense engine behind a literal prefilter gate.
#[derive(Debug)]
struct PrefilterBackend(Arc<PrefilteredEvsa>);

impl EngineBackend for PrefilterBackend {
    fn kind(&self) -> Engine {
        Engine::Prefilter
    }
    fn evsa(&self) -> &Arc<EVsa> {
        self.0.evsa_arc()
    }
    fn eval_scratch(
        &self,
        doc: &[u8],
        cache: &mut DenseCache,
        stats: &mut PrefilterStats,
    ) -> SpanRelation {
        self.0.eval_with(doc, cache, stats)
    }
    fn eval_pooled(&self, doc: &[u8]) -> SpanRelation {
        self.0.eval(doc)
    }
}

/// The ahead-of-time premultiplied-table engine.
#[derive(Debug)]
struct AotBackend(Arc<AotEvsa>);

impl EngineBackend for AotBackend {
    fn kind(&self) -> Engine {
        Engine::Aot
    }
    fn evsa(&self) -> &Arc<EVsa> {
        self.0.evsa_arc()
    }
    fn eval_scratch(
        &self,
        doc: &[u8],
        cache: &mut DenseCache,
        stats: &mut PrefilterStats,
    ) -> SpanRelation {
        self.0.eval_with(doc, cache, stats)
    }
    fn eval_pooled(&self, doc: &[u8]) -> SpanRelation {
        self.0.eval(doc)
    }
}

/// A spanner compiled for repeated evaluation.
#[derive(Debug, Clone)]
pub struct ExecSpanner {
    evsa: Arc<EVsa>,
    /// The engine the caller asked for (what [`ExecSpanner::engine`]
    /// reports); compile-time tiering may have placed the backend on a
    /// lower tier (see [`ExecSpanner::tier`]).
    requested: Engine,
    /// The engine behind the object-safe backend interface. The dense
    /// and prefilter backends pool scan caches internally; executors
    /// that manage per-worker scratch call
    /// [`EngineBackend::eval_scratch`] instead.
    backend: Arc<dyn EngineBackend>,
}

impl ExecSpanner {
    /// Compiles a VSet-automaton once (functionalization + block normal
    /// form) with the default [`Engine::Dense`]. Thin wrapper over
    /// [`crate::CompileOptions`], the general front door.
    pub fn compile(vsa: &Vsa) -> ExecSpanner {
        crate::CompileOptions::new().compile_spanner(vsa)
    }

    /// Compiles with an explicit engine choice. Thin wrapper over
    /// [`crate::CompileOptions::engine`].
    pub fn compile_with(vsa: &Vsa, engine: Engine) -> ExecSpanner {
        crate::CompileOptions::new()
            .engine(engine)
            .compile_spanner(vsa)
    }

    /// [`ExecSpanner::compile_with`] plus an explicit dense-engine
    /// configuration (cache bound, skip-loop) applied to whichever tier
    /// actually compiles — used by the engine-matrix differential
    /// harness to starve lazy-DFA caches under every engine. Thin
    /// wrapper over [`crate::CompileOptions::dense`].
    pub fn compile_with_config(vsa: &Vsa, engine: Engine, config: DenseConfig) -> ExecSpanner {
        crate::CompileOptions::new()
            .engine(engine)
            .dense(config)
            .compile_spanner(vsa)
    }

    /// Builds the spanner for an already-compiled automaton, optionally
    /// indexing the dense tables by a shared byte partition (the fleet
    /// engine passes the coarsest common refinement across its
    /// members; see [`DenseEvsa::compile_with_classes`]).
    pub(crate) fn from_evsa(
        evsa: Arc<EVsa>,
        engine: Engine,
        classes: Option<splitc_automata::classes::ByteClasses>,
        config: DenseConfig,
    ) -> ExecSpanner {
        let backend: Arc<dyn EngineBackend> = match engine {
            Engine::Nfa => Arc::new(NfaBackend(evsa.clone())),
            Engine::Dense => Arc::new(DenseBackend(Arc::new(match classes {
                Some(c) => DenseEvsa::compile_with_classes(evsa.clone(), config, c),
                None => DenseEvsa::compile(evsa.clone(), config),
            }))),
            Engine::Prefilter => Arc::new(PrefilterBackend(Arc::new(match classes {
                Some(c) => PrefilteredEvsa::compile_with_classes(evsa.clone(), config, c),
                None => PrefilteredEvsa::compile(evsa.clone(), config),
            }))),
            Engine::Aot => {
                let aot_config = AotConfig {
                    dense: config,
                    ..AotConfig::default()
                };
                let aot = match classes.clone() {
                    Some(c) => AotEvsa::compile_with_classes(evsa.clone(), aot_config, c),
                    None => AotEvsa::compile(evsa.clone(), aot_config),
                };
                match aot {
                    Some(a) => Arc::new(AotBackend(Arc::new(a))),
                    // Over budget: degrade to the lazy dense tier, which
                    // is exact at any automaton size.
                    None => Arc::new(DenseBackend(Arc::new(match classes {
                        Some(c) => DenseEvsa::compile_with_classes(evsa.clone(), config, c),
                        None => DenseEvsa::compile(evsa.clone(), config),
                    }))),
                }
            }
        };
        ExecSpanner {
            evsa,
            requested: engine,
            backend,
        }
    }

    /// The engine this spanner was compiled for (as requested; see
    /// [`ExecSpanner::tier`] for the tier actually chosen).
    pub fn engine(&self) -> Engine {
        self.requested
    }

    /// The engine tier the compile-time tiering actually selected:
    /// equals [`ExecSpanner::engine`] except when an [`Engine::Aot`]
    /// request exceeded the determinization budget and degraded to
    /// [`Engine::Dense`].
    pub fn tier(&self) -> Engine {
        self.backend.kind()
    }

    /// The compiled block-normal-form automaton.
    pub fn evsa(&self) -> &EVsa {
        &self.evsa
    }

    /// The backend, for executors that manage per-worker scratch
    /// (the corpus and fleet runners).
    pub(crate) fn backend(&self) -> &Arc<dyn EngineBackend> {
        &self.backend
    }

    /// A process-unique identity for this compilation, used as the
    /// spanner half of [`crate::segcache::SegmentCache`] keys. It is the
    /// address of the shared eVSA allocation: clones of one compilation
    /// share cache entries, while independent compilations (even of the
    /// same pattern) get distinct ids — which costs at most extra cache
    /// misses, never a wrong answer. Long-lived services that want
    /// cross-request sharing should therefore reuse compiled spanners
    /// (as `splitc-server`'s registry does) rather than recompile.
    pub fn cache_id(&self) -> u64 {
        Arc::as_ptr(&self.evsa) as u64
    }

    /// Evaluates on one document.
    pub fn eval(&self, doc: &[u8]) -> SpanRelation {
        self.backend.eval_pooled(doc)
    }
}

/// Sequential baseline: evaluates the spanner on the whole document.
pub fn evaluate_sequential(spanner: &ExecSpanner, doc: &[u8]) -> SpanRelation {
    spanner.eval(doc)
}

/// Split-and-distribute evaluation: splits `doc`, evaluates the (split-)
/// spanner on every chunk on a pool of `workers` threads, shifts and
/// unions the results. When `P = P_S ∘ S` has been certified, this
/// equals `evaluate_sequential(P, doc)`.
///
/// `workers == 0` is normalized to 1 (sequential evaluation on the
/// calling thread), as in every pool entry point of this crate.
pub fn evaluate_split(
    split_spanner: &ExecSpanner,
    split: &SplitFn,
    doc: &[u8],
    workers: usize,
) -> SpanRelation {
    let chunks = split(doc);
    if chunks.is_empty() {
        return SpanRelation::empty();
    }
    let results = run_pool(workers, chunks.len(), |i| {
        let sp = chunks[i];
        let local = split_spanner.eval(sp.slice(doc));
        local
            .iter()
            .map(|t| t.shift(sp))
            .collect::<Vec<SpanTuple>>()
    });
    SpanRelation::from_tuples(results.into_iter().flatten().collect())
}

/// Evaluates the spanner over a collection of documents, one task per
/// document (the "pre-parallel" baseline of the paper's Spark
/// experiments). Returns one relation per document, in order.
/// `workers == 0` is normalized to 1.
pub fn evaluate_many(spanner: &ExecSpanner, docs: &[&[u8]], workers: usize) -> Vec<SpanRelation> {
    run_pool(workers, docs.len(), |i| spanner.eval(docs[i]))
}

/// Evaluates over a collection of documents with **per-chunk tasks**:
/// every document is split and each (doc, chunk) pair becomes one pool
/// task — more, smaller tasks for the same pool, reproducing the paper's
/// observation that splitting helps even for pre-parallel collections.
/// `workers == 0` is normalized to 1.
pub fn evaluate_many_split(
    split_spanner: &ExecSpanner,
    split: &SplitFn,
    docs: &[&[u8]],
    workers: usize,
) -> Vec<SpanRelation> {
    // Flatten (doc, chunk) pairs.
    let mut tasks: Vec<(usize, Span)> = Vec::new();
    for (di, doc) in docs.iter().enumerate() {
        for sp in split(doc) {
            tasks.push((di, sp));
        }
    }
    // Empty task lists skip the pool and merge machinery entirely —
    // frequent when splits produce nothing. (Singleton lists are already
    // run inline by `run_pool`, which spawns no threads for `n <= 1`.)
    if tasks.is_empty() {
        return docs.iter().map(|_| SpanRelation::empty()).collect();
    }
    let partials = run_pool(workers, tasks.len(), |i| {
        let (di, sp) = tasks[i];
        let local = split_spanner.eval(sp.slice(docs[di]));
        (
            di,
            local
                .iter()
                .map(|t| t.shift(sp))
                .collect::<Vec<SpanTuple>>(),
        )
    });
    let mut per_doc: Vec<Vec<SpanTuple>> = vec![Vec::new(); docs.len()];
    for (di, tuples) in partials {
        per_doc[di].extend(tuples);
    }
    per_doc.into_iter().map(SpanRelation::from_tuples).collect()
}

/// Runs `n` independent tasks on `workers` threads with work stealing
/// via a shared atomic counter; collects results in task order.
///
/// `workers == 0` is normalized to 1: the pool entry points document
/// "0 means sequential" rather than panicking deep inside the engine,
/// so callers can pass a possibly-zero configured value straight
/// through.
fn run_pool<T, F>(workers: usize, n: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1);
    if workers == 1 || n <= 1 {
        return (0..n).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots_ptr = SlotsPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            let next = &next;
            let task = &task;
            let slots_ptr = &slots_ptr;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = task(i);
                // SAFETY: each index is claimed exactly once via the
                // atomic counter, so writes to distinct slots never
                // alias; the scope guarantees the buffer outlives the
                // threads.
                unsafe {
                    *slots_ptr.0.add(i) = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task ran"))
        .collect()
}

/// Send/Sync wrapper for the disjoint-slot output buffer.
struct SlotsPtr<T>(*mut Option<T>);
unsafe impl<T: Send> Send for SlotsPtr<T> {}
unsafe impl<T: Send> Sync for SlotsPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter::{self, native};

    fn spanner(pat: &str) -> ExecSpanner {
        ExecSpanner::compile(&Rgx::parse(pat).unwrap().to_vsa().unwrap())
    }

    #[test]
    fn split_evaluation_matches_sequential() {
        // A self-splittable extractor: all a-runs; sentence splitter.
        let p = spanner(".*x{a+}.*");
        let split: SplitFn = Arc::new(native::sentences);
        let doc = b"aa bb aaa. a. bbb aa";
        for workers in [1, 2, 4] {
            assert_eq!(
                evaluate_split(&p, &split, doc, workers),
                evaluate_sequential(&p, doc),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn formal_splitter_wrapping() {
        let p = spanner(".*x{a+}.*");
        let split = split_fn_of_splitter(&splitter::sentences());
        let doc = b"aa.bb aaa";
        assert_eq!(
            evaluate_split(&p, &split, doc, 2),
            evaluate_sequential(&p, doc)
        );
    }

    #[test]
    fn empty_and_trivial_documents() {
        let p = spanner(".*x{a+}.*");
        let split: SplitFn = Arc::new(native::sentences);
        assert!(evaluate_split(&p, &split, b"", 4).is_empty());
        assert!(evaluate_split(&p, &split, b"...", 4).is_empty());
    }

    #[test]
    fn many_documents_both_granularities() {
        let p = spanner(".*x{a+}.*");
        let split: SplitFn = Arc::new(native::sentences);
        let docs: Vec<&[u8]> = vec![b"aa. b aa", b"", b"a.a.a", b"bbb"];
        let per_doc = evaluate_many(&p, &docs, 3);
        let per_chunk = evaluate_many_split(&p, &split, &docs, 3);
        assert_eq!(per_doc.len(), docs.len());
        assert_eq!(per_doc, per_chunk);
        // "aa. b aa": x{a+} matches every a+ substring — 3 per a-pair.
        assert_eq!(per_doc[0].len(), 6);
        assert!(per_doc[1].is_empty());
    }

    #[test]
    fn pool_order_is_stable() {
        let p = spanner("x{a*}");
        let docs: Vec<Vec<u8>> = (0..64).map(|i| vec![b'a'; i % 7]).collect();
        let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
        let out = evaluate_many(&p, &refs, 8);
        for (i, rel) in out.iter().enumerate() {
            assert_eq!(rel.len(), 1);
            assert_eq!(
                rel.tuples()[0].spans()[0].len(),
                i % 7,
                "order must be preserved"
            );
        }
    }

    #[test]
    fn engines_agree_and_default_is_dense() {
        let pat = ".*x{a+}.*";
        let p = Rgx::parse(pat).unwrap().to_vsa().unwrap();
        let nfa = ExecSpanner::compile_with(&p, Engine::Nfa);
        let dense = ExecSpanner::compile_with(&p, Engine::Dense);
        assert_eq!(nfa.engine(), Engine::Nfa);
        assert_eq!(dense.engine(), Engine::Dense);
        assert_eq!(ExecSpanner::compile(&p).engine(), Engine::Dense);
        let split: SplitFn = Arc::new(native::sentences);
        for doc in [b"aa bb aaa. a. bbb aa".as_slice(), b"", b"..."] {
            assert_eq!(nfa.eval(doc), dense.eval(doc));
            assert_eq!(
                evaluate_split(&nfa, &split, doc, 2),
                evaluate_split(&dense, &split, doc, 2)
            );
        }
        assert_eq!("nfa".parse::<Engine>().unwrap(), Engine::Nfa);
        assert_eq!("dense".parse::<Engine>().unwrap(), Engine::Dense);
        assert_eq!("prefilter".parse::<Engine>().unwrap(), Engine::Prefilter);
        assert!("turbo".parse::<Engine>().is_err());
    }

    #[test]
    fn prefilter_engine_agrees_with_dense() {
        // Sparse-match extractor: most sentences are gate-rejected, and
        // the relations still match the other engines exactly.
        let pat = "(.*[^0-9]|)x{[0-9]+}([^0-9].*|)";
        let p = Rgx::parse(pat).unwrap().to_vsa().unwrap();
        let dense = ExecSpanner::compile_with(&p, Engine::Dense);
        let pre = ExecSpanner::compile_with(&p, Engine::Prefilter);
        assert_eq!(pre.engine(), Engine::Prefilter);
        assert_eq!(pre.engine().name(), "prefilter");
        let split: SplitFn = Arc::new(native::sentences);
        for doc in [
            b"no numbers anywhere. plain words. more text".as_slice(),
            b"answer 42. or 7 maybe. none here",
            b"",
            b"...",
        ] {
            assert_eq!(pre.eval(doc), dense.eval(doc));
            assert_eq!(
                evaluate_split(&pre, &split, doc, 2),
                evaluate_split(&dense, &split, doc, 2)
            );
        }
    }

    #[test]
    fn aot_engine_agrees_and_reports_tier() {
        let pat = "(.*[^0-9]|)x{[0-9]+}([^0-9].*|)";
        let p = Rgx::parse(pat).unwrap().to_vsa().unwrap();
        let dense = ExecSpanner::compile_with(&p, Engine::Dense);
        let aot = ExecSpanner::compile_with(&p, Engine::Aot);
        assert_eq!(aot.engine(), Engine::Aot);
        assert_eq!(aot.tier(), Engine::Aot, "small spanner must fit the budget");
        assert_eq!(dense.tier(), Engine::Dense);
        assert_eq!("aot".parse::<Engine>().unwrap(), Engine::Aot);
        let split: SplitFn = Arc::new(native::sentences);
        for doc in [
            b"no numbers anywhere. plain words. more text".as_slice(),
            b"answer 42. or 7 maybe. none here",
            b"",
            b"...",
        ] {
            assert_eq!(aot.eval(doc), dense.eval(doc));
            assert_eq!(
                evaluate_split(&aot, &split, doc, 2),
                evaluate_split(&dense, &split, doc, 2)
            );
        }
    }

    #[test]
    fn many_split_short_circuits_empty_and_singleton_tasks() {
        let p = spanner(".*x{a+}.*");
        let split: SplitFn = Arc::new(native::sentences);
        // No chunks at all: one empty relation per document, pool skipped.
        let empties: Vec<&[u8]> = vec![b"...", b"", b"."];
        let out = evaluate_many_split(&p, &split, &empties, 4);
        assert_eq!(out.len(), empties.len());
        assert!(out.iter().all(SpanRelation::is_empty));
        assert_eq!(out, evaluate_many(&p, &empties, 4));
        // Exactly one chunk across the collection: inline evaluation,
        // results identical to the pooled path and correctly shifted.
        let single: Vec<&[u8]> = vec![b"...", b".aa a", b""];
        let out = evaluate_many_split(&p, &split, &single, 4);
        assert_eq!(out, evaluate_many(&p, &single, 4));
        assert_eq!(out[1].len(), 4, "a-runs of \"aa a\": aa, a, a, a");
        // No documents at all.
        assert!(evaluate_many_split(&p, &split, &[], 4).is_empty());
    }

    #[test]
    fn zero_workers_normalized_to_sequential() {
        // The documented contract: `workers == 0` behaves exactly like
        // `workers == 1` in every pool entry point (it used to panic).
        let p = spanner(".*x{a+}.*");
        let split: SplitFn = Arc::new(native::sentences);
        let doc = b"aa bb aaa. a. bbb aa";
        let docs: Vec<&[u8]> = vec![doc, b"", b"a.a"];
        assert_eq!(
            evaluate_split(&p, &split, doc, 0),
            evaluate_split(&p, &split, doc, 1)
        );
        assert_eq!(evaluate_many(&p, &docs, 0), evaluate_many(&p, &docs, 1));
        assert_eq!(
            evaluate_many_split(&p, &split, &docs, 0),
            evaluate_many_split(&p, &split, &docs, 1)
        );
    }

    #[test]
    fn split_spanner_differs_from_p_when_not_self_splittable() {
        // Sanity: the engine computes P_S ∘ S; if P is not
        // self-splittable, distributing P itself changes the semantics —
        // which the engine faithfully reflects.
        let p = spanner(".*x{a\\.a}.*");
        let split: SplitFn = Arc::new(native::sentences);
        let doc = b"a.a";
        assert_eq!(evaluate_sequential(&p, doc).len(), 1);
        assert!(evaluate_split(&p, &split, doc, 2).is_empty());
    }
}
