//! Ref-words: documents interleaved with variable operations (paper §4).
//!
//! A ref-word over `Σ ∪ Γ_V` encodes a document together with one
//! `(V, d)`-tuple: the morphism `clr` erases the variable operations, and
//! the positions of `x⊢` / `⊣x` determine the span assigned to `x`. A
//! ref-word is *valid* if every variable is opened exactly once and closed
//! exactly once, with the opening first.
//!
//! Two ref-words that differ only in the order of adjacent variable
//! operations denote the same tuple; the *normal form* sorts each maximal
//! block of operations by the fixed order `≺` (see [`crate::vars`]).
//! Spanner equivalence is equality of normalized valid ref-word languages,
//! which is how all decision procedures in this library are implemented.

use crate::span::Span;
use crate::tuple::SpanTuple;
use crate::vars::{display_op, VarId, VarOp, VarTable};

/// One symbol of a ref-word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefSym {
    /// A document byte.
    Byte(u8),
    /// A variable operation.
    Op(VarOp),
}

/// A ref-word: a sequence of bytes and variable operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RefWord {
    syms: Vec<RefSym>,
}

impl RefWord {
    /// Creates a ref-word from symbols.
    pub fn new(syms: Vec<RefSym>) -> RefWord {
        RefWord { syms }
    }

    /// The symbols.
    pub fn syms(&self) -> &[RefSym] {
        &self.syms
    }

    /// The `clr` morphism: erases variable operations, leaving the
    /// document.
    pub fn clr(&self) -> Vec<u8> {
        self.syms
            .iter()
            .filter_map(|s| match s {
                RefSym::Byte(b) => Some(*b),
                RefSym::Op(_) => None,
            })
            .collect()
    }

    /// Validity for a variable table: every variable opened exactly once
    /// and closed exactly once, opening first.
    pub fn is_valid(&self, table: &VarTable) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum St {
            Waiting,
            Open,
            Closed,
        }
        let mut st = vec![St::Waiting; table.len()];
        for s in &self.syms {
            if let RefSym::Op(op) = s {
                let i = op.var().index();
                if i >= st.len() {
                    return false;
                }
                match op {
                    VarOp::Open(_) if st[i] == St::Waiting => st[i] = St::Open,
                    VarOp::Close(_) if st[i] == St::Open => st[i] = St::Closed,
                    _ => return false,
                }
            }
        }
        st.iter().all(|s| *s == St::Closed)
    }

    /// Extracts the tuple `t_r` encoded by a valid ref-word. Returns
    /// `None` if the ref-word is not valid for the table.
    pub fn tuple(&self, table: &VarTable) -> Option<SpanTuple> {
        if !self.is_valid(table) {
            return None;
        }
        let mut opens = vec![usize::MAX; table.len()];
        let mut closes = vec![usize::MAX; table.len()];
        let mut pos = 0usize;
        for s in &self.syms {
            match s {
                RefSym::Byte(_) => pos += 1,
                RefSym::Op(VarOp::Open(v)) => opens[v.index()] = pos,
                RefSym::Op(VarOp::Close(v)) => closes[v.index()] = pos,
            }
        }
        Some(SpanTuple::new(
            (0..table.len())
                .map(|i| Span::new(opens[i], closes[i]))
                .collect(),
        ))
    }

    /// Normal form: each maximal block of adjacent variable operations is
    /// sorted by `≺`. Denotes the same tuple.
    pub fn normalize(&self) -> RefWord {
        let mut out: Vec<RefSym> = Vec::with_capacity(self.syms.len());
        let mut block: Vec<VarOp> = Vec::new();
        for s in &self.syms {
            match s {
                RefSym::Op(op) => block.push(*op),
                RefSym::Byte(b) => {
                    block.sort_unstable();
                    out.extend(block.drain(..).map(RefSym::Op));
                    out.push(RefSym::Byte(*b));
                }
            }
        }
        block.sort_unstable();
        out.extend(block.drain(..).map(RefSym::Op));
        RefWord { syms: out }
    }

    /// Builds the (normalized) ref-word encoding `tuple` on `doc`.
    pub fn from_tuple(doc: &[u8], tuple: &SpanTuple) -> RefWord {
        let mut syms: Vec<RefSym> = Vec::with_capacity(doc.len() + 2 * tuple.arity());
        for pos in 0..=doc.len() {
            let mut ops: Vec<VarOp> = Vec::new();
            for (i, sp) in tuple.spans().iter().enumerate() {
                if sp.start == pos {
                    ops.push(VarOp::Open(VarId(i as u32)));
                }
                if sp.end == pos {
                    ops.push(VarOp::Close(VarId(i as u32)));
                }
            }
            ops.sort_unstable();
            syms.extend(ops.into_iter().map(RefSym::Op));
            if pos < doc.len() {
                syms.push(RefSym::Byte(doc[pos]));
            }
        }
        RefWord { syms }
    }

    /// Renders with variable names (bytes shown as characters).
    pub fn display(&self, table: &VarTable) -> String {
        let mut out = String::new();
        for s in &self.syms {
            match s {
                RefSym::Byte(b) => {
                    if b.is_ascii_graphic() || *b == b' ' {
                        out.push(*b as char);
                    } else {
                        out.push_str(&format!("\\x{b:02x}"));
                    }
                }
                RefSym::Op(op) => out.push_str(&display_op(*op, table)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_xy() -> VarTable {
        VarTable::new(["x", "y"]).unwrap()
    }

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    #[test]
    fn clr_erases_ops() {
        let r = RefWord::new(vec![
            RefSym::Op(VarOp::Open(x())),
            RefSym::Byte(b'a'),
            RefSym::Op(VarOp::Close(x())),
            RefSym::Byte(b'b'),
        ]);
        assert_eq!(r.clr(), b"ab");
    }

    #[test]
    fn validity() {
        let t = VarTable::new(["x"]).unwrap();
        let ok = RefWord::new(vec![
            RefSym::Op(VarOp::Open(x())),
            RefSym::Byte(b'a'),
            RefSym::Op(VarOp::Close(x())),
        ]);
        assert!(ok.is_valid(&t));
        // Close before open.
        let bad = RefWord::new(vec![
            RefSym::Op(VarOp::Close(x())),
            RefSym::Op(VarOp::Open(x())),
        ]);
        assert!(!bad.is_valid(&t));
        // Missing close.
        let bad2 = RefWord::new(vec![RefSym::Op(VarOp::Open(x()))]);
        assert!(!bad2.is_valid(&t));
        // Double open. (Paper footnote 5: ε ∈ R((x{a})*) is not valid.)
        let bad3 = RefWord::new(vec![
            RefSym::Op(VarOp::Open(x())),
            RefSym::Op(VarOp::Close(x())),
            RefSym::Op(VarOp::Open(x())),
            RefSym::Op(VarOp::Close(x())),
        ]);
        assert!(!bad3.is_valid(&t));
        let empty = RefWord::default();
        assert!(!empty.is_valid(&t));
        assert!(empty.is_valid(&VarTable::empty()));
    }

    #[test]
    fn tuple_extraction() {
        // x{a} b y{c}  ->  x = [0,1), y = [2,3)
        let r = RefWord::new(vec![
            RefSym::Op(VarOp::Open(x())),
            RefSym::Byte(b'a'),
            RefSym::Op(VarOp::Close(x())),
            RefSym::Byte(b'b'),
            RefSym::Op(VarOp::Open(y())),
            RefSym::Byte(b'c'),
            RefSym::Op(VarOp::Close(y())),
        ]);
        let t = r.tuple(&table_xy()).unwrap();
        assert_eq!(t.get(x()), Span::new(0, 1));
        assert_eq!(t.get(y()), Span::new(2, 3));
    }

    #[test]
    fn normalization_sorts_blocks() {
        // y⊢ x⊢ a ⊣x ⊣y — the leading block is out of ≺ order.
        let r = RefWord::new(vec![
            RefSym::Op(VarOp::Open(y())),
            RefSym::Op(VarOp::Open(x())),
            RefSym::Byte(b'a'),
            RefSym::Op(VarOp::Close(x())),
            RefSym::Op(VarOp::Close(y())),
        ]);
        let n = r.normalize();
        assert_eq!(
            n.syms()[0],
            RefSym::Op(VarOp::Open(x())),
            "opens sorted by variable"
        );
        assert_eq!(n.tuple(&table_xy()), r.tuple(&table_xy()));
    }

    #[test]
    fn from_tuple_roundtrip() {
        let doc = b"abcd";
        let t = SpanTuple::new(vec![Span::new(1, 3), Span::new(2, 2)]);
        let r = RefWord::from_tuple(doc, &t);
        assert_eq!(r.clr(), doc);
        assert_eq!(r.tuple(&table_xy()).unwrap(), t);
        assert_eq!(r, r.normalize(), "from_tuple emits normal form");
    }

    #[test]
    fn display_roundtrip_readable() {
        let t = VarTable::new(["x"]).unwrap();
        let r = RefWord::from_tuple(b"ab", &SpanTuple::new(vec![Span::new(0, 1)]));
        assert_eq!(r.display(&t), "x⊢a⊣xb");
    }
}
