//! Incremental maintenance under edits — the paper's Wikipedia-model
//! motivation (§1): after certifying `P = P ∘ S`, a small edit to the
//! corpus only requires re-processing the touched segments.
//!
//! Two layers demonstrate the same payoff:
//!
//! 1. [`IncrementalRunner`] — single document, sequential: re-evaluate
//!    after an in-place edit; only the edited segment misses its
//!    (bounded, content-addressed) cache.
//! 2. [`CorpusHandle`] + [`SegmentCache`] — a sharded, *maintained*
//!    corpus: point edits, appends, and shard replacement resplit only
//!    the dirty window (`DeltaStats` reports the resplit frontier),
//!    and re-extraction is two-tier incremental: untouched shards
//!    reuse their memoized relation without running at all
//!    (`stats.docs_reused`), while inside the dirty shards the shared
//!    segment cache re-evaluates only segments whose bytes changed.
//!
//! ```sh
//! cargo run --release --example incremental_wiki
//! ```

use split_correctness::prelude::*;
use split_correctness::textgen::{self, CorpusConfig};
use splitc_textgen::spanners;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // Entity extraction, certified sentence-splittable.
    let p = spanners::entity_extractor();
    let s = splitters::sentences();
    assert!(self_splittable(&p, &s).unwrap().holds());
    println!("entity extractor certified self-splittable by sentences ✓");

    let cfg = CorpusConfig {
        target_bytes: 2 << 20,
        ..Default::default()
    };
    let mut doc = textgen::wiki_corpus(&cfg);

    // --- Layer 1: IncrementalRunner on one document --------------------
    let compile = CompileOptions::new();
    let runner = IncrementalRunner::new(
        compile.compile_spanner(&p),
        Arc::new(native_splitters::sentences) as SplitFn,
    );

    // Cold run: every segment is a miss.
    let t0 = Instant::now();
    let before = runner.eval(&doc);
    let cold = t0.elapsed();
    let s0 = runner.stats();
    println!(
        "cold run: {} entities, {} segments evaluated in {:?}",
        before.len(),
        s0.misses,
        cold
    );

    // Simulate a Wikipedia-style edit: overwrite a few bytes in the
    // middle of one sentence.
    let mid = doc.len() / 2;
    for (i, b) in b"Newname".iter().enumerate() {
        doc[mid + i] = *b;
    }

    let t0 = Instant::now();
    let after = runner.eval(&doc);
    let warm = t0.elapsed();
    let s1 = runner.stats();
    println!(
        "after edit: {} entities; recomputed {} segment(s), {} from cache, in {:?} \
         ({:.1}x faster than cold)",
        after.len(),
        s1.misses - s0.misses,
        s1.hits - s0.hits,
        warm,
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9),
    );
    assert!(
        s1.misses - s0.misses <= 2,
        "an in-sentence edit touches at most the edited segment(s)"
    );

    // The incremental result equals from-scratch evaluation.
    let direct = evaluate_sequential(&compile.compile_spanner(&p), &doc);
    assert_eq!(after, direct);
    println!("incremental result equals from-scratch evaluation ✓");

    // --- Layer 2: a maintained sharded corpus --------------------------
    let compiled = compile.compile_splitter(&s);
    let shards: Vec<Vec<u8>> = (0..8)
        .map(|i| {
            textgen::wiki_corpus(&CorpusConfig {
                target_bytes: 256 << 10,
                seed: 42 + i,
                ..Default::default()
            })
        })
        .collect();
    let mut handle = CorpusHandle::from_shards(compiled.clone(), shards);

    let cache = Arc::new(SegmentCache::new(1 << 16));
    let cached = RunnerOptions::new()
        .segment_cache(cache.clone())
        .corpus_runner(compile.compile_spanner(&p), compiled.clone());

    let t0 = Instant::now();
    let cold_corpus = handle.extract(&cached);
    let cold = t0.elapsed();
    println!(
        "\nmaintained corpus: {} shards / {} segments; cold extraction {:?} ({} cache misses)",
        handle.num_shards(),
        handle.total_segments(),
        cold,
        cache.stats().misses,
    );

    // A point edit, an append, and a shard replacement — each delta
    // resplits only the dirty window of the touched shard.
    let d = handle.edit(3, 1000..1007, b"Newname");
    println!(
        "point edit: resplit {} bytes / {} segments (window {}..{}, converged: {})",
        d.resplit_bytes, d.segments_resplit, d.window_start, d.window_end, d.converged
    );
    handle.append(5, b" Trailing update sentence.");
    handle.replace_shard(
        7,
        textgen::wiki_corpus(&CorpusConfig {
            target_bytes: 256 << 10,
            seed: 99,
            ..Default::default()
        }),
    );

    let t0 = Instant::now();
    let warm_corpus = handle.extract(&cached);
    let warm = t0.elapsed();
    let cs = cache.stats();
    println!(
        "after 3 deltas: re-extraction {:?} ({:.1}x faster than cold; \
         {}/{} shards reused from memo; {} hits / {} misses in the dirty shards)",
        warm,
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9),
        warm_corpus.stats.docs_reused,
        warm_corpus.stats.docs,
        cs.hits,
        cs.misses,
    );
    assert_eq!(
        warm_corpus.stats.docs_reused, 5,
        "only the 3 edited shards run"
    );
    assert_ne!(cold_corpus.relations, warm_corpus.relations);

    // Byte-identical to an uncached full rescan of the edited corpus.
    let full = RunnerOptions::new()
        .corpus_runner(compile.compile_spanner(&p), compiled)
        .run_slices(&handle.presplit_docs().map(|(b, _)| b).collect::<Vec<_>>());
    assert_eq!(warm_corpus.relations, full.relations);
    println!("maintained corpus equals full re-extraction ✓");
}
