//! T2 — Theorems 5.7 / 5.17: split-correctness and self-splittability
//! for deterministic functional automata + disjoint splitters run in
//! polynomial time. Measured against the general (PSPACE) procedure on
//! the same instances.

use splitc_bench::families::chain_extractor;
use splitc_bench::{bench_json, ms, time_best, Table};
use splitc_core::{self_splittable, self_splittable_df};
use splitc_spanner::splitter;

fn main() {
    let s = splitter::sentences();
    let sd = s.determinize();
    let mut t = Table::new(
        "T2 — self-splittability by sentences: general vs dfVSA fast path",
        &[
            "chain k",
            "|Q(P)|",
            "general ms",
            "fast (Thm 5.7) ms",
            "verdict",
        ],
    );
    for k in [2usize, 4, 8, 16, 32] {
        let p = chain_extractor(k);
        let pd = p.determinize();
        let (vg, dg) = time_best(3, || self_splittable(&p, &s).unwrap());
        let (vf, df) = time_best(3, || self_splittable_df(&pd, &sd).unwrap());
        assert_eq!(vg.holds(), vf.holds(), "procedures must agree");
        // Decision-procedure rows: bytes/tuples do not apply (0).
        bench_json(
            &format!("t2_splitcorrect_scaling/k={k}"),
            "general",
            0,
            k as f64,
            dg,
            0,
        );
        bench_json(
            &format!("t2_splitcorrect_scaling/k={k}"),
            "dfvsa",
            0,
            k as f64,
            df,
            0,
        );
        t.row(&[
            k.to_string(),
            pd.num_states().to_string(),
            ms(dg),
            ms(df),
            if vf.holds() {
                "splittable".into()
            } else {
                "no".into()
            },
        ]);
    }
    t.print();
    println!(
        "\nShape check: both columns grow polynomially on this benign family\n\
         (the general procedure's exponential worst case appears in T3)."
    );
}
