//! Internal helpers shared by the decision procedures: raw ref-word NFA
//! encodings of classic VSet-automata, alphabet lifting, and witness
//! decoding.

use splitc_automata::nfa::{Nfa, StateId, Sym};
use splitc_spanner::evsa::EVsa;
use splitc_spanner::ext::{ExtAlphabet, ExtSym};
use splitc_spanner::span::Span;
use splitc_spanner::tuple::SpanTuple;
use splitc_spanner::vars::{VarId, VarOp, VarTable};
use splitc_spanner::vsa::{Label, Vsa};

/// Encodes a classic VSet-automaton as a *raw* NFA over an extended
/// alphabet: byte sets become byte-class symbols, operations become
/// operation symbols, ε stays ε. No normalization or validity filtering
/// is applied — used by constructions (Prop. 5.9) that manipulate the
/// ref-word language structurally.
///
/// The automaton's variables must be a subset of `ext`'s (by name);
/// operations are remapped accordingly.
pub fn raw_ext_nfa(vsa: &Vsa, ext: &ExtAlphabet) -> Nfa {
    let remap = var_remap(vsa.vars(), ext.vars());
    let mut nfa = Nfa::new(ext.alphabet_size());
    for _ in 0..vsa.num_states() {
        nfa.add_state();
    }
    nfa.add_start(vsa.start());
    for q in 0..vsa.num_states() as StateId {
        nfa.set_final(q, vsa.is_final(q));
        for &(l, r) in vsa.transitions_from(q) {
            match l {
                Label::Eps => nfa.add_eps(q, r),
                Label::Op(op) => nfa.add_transition(q, ext.op_sym(remap_op(op, &remap)), r),
                Label::Bytes(m) => {
                    for s in ext.class_syms(&m) {
                        nfa.add_transition(q, s, r);
                    }
                }
            }
        }
    }
    nfa
}

/// Expands a block-normal-form automaton into its order-normalized
/// ref-word NFA over a (possibly larger) extended alphabet, remapping
/// variables by name and adding self-loops on the given foreign symbols
/// at **every** state (so foreign operations may interleave anywhere).
pub fn lifted_nfa(evsa: &EVsa, ext: &ExtAlphabet, self_loops: &[Sym]) -> Nfa {
    let remap = var_remap(evsa.vars(), ext.vars());
    let mut nfa = Nfa::new(ext.alphabet_size());
    for _ in 0..evsa.num_states() {
        nfa.add_state();
    }
    nfa.add_start(evsa.start());
    for q in 0..evsa.num_states() as StateId {
        let mut trie: std::collections::HashMap<(StateId, Sym), StateId> =
            std::collections::HashMap::new();
        let mut walk = |nfa: &mut Nfa, from: StateId, ops: &[VarOp]| -> StateId {
            let mut cur = from;
            for &op in ops {
                let sym = ext.op_sym(remap_op(op, &remap));
                cur = *trie.entry((cur, sym)).or_insert_with(|| {
                    let s = nfa.add_state();
                    nfa.add_transition(cur, sym, s);
                    s
                });
            }
            cur
        };
        for (block, mask, target) in evsa.transitions_from(q) {
            let tail = walk(&mut nfa, q, block);
            for s in ext.class_syms(mask) {
                nfa.add_transition(tail, s, *target);
            }
        }
        for block in evsa.final_blocks(q) {
            let tail = walk(&mut nfa, q, block);
            nfa.set_final(tail, true);
        }
    }
    if !self_loops.is_empty() {
        for q in 0..nfa.num_states() as StateId {
            for &s in self_loops {
                nfa.add_transition(q, s, q);
            }
        }
    }
    nfa
}

/// Variable remapping by name; panics when a variable is missing from the
/// target table (an internal invariant of the constructions).
pub fn var_remap(from: &VarTable, to: &VarTable) -> Vec<VarId> {
    from.names()
        .iter()
        .map(|n| {
            to.lookup(n)
                .expect("target table must contain all variables")
        })
        .collect()
}

fn remap_op(op: VarOp, remap: &[VarId]) -> VarOp {
    match op {
        VarOp::Open(v) => VarOp::Open(remap[v.index()]),
        VarOp::Close(v) => VarOp::Close(remap[v.index()]),
    }
}

/// Picks a variable name not present in `table` (used for the splitter
/// variable in merged alphabets).
pub fn fresh_var_name(table: &VarTable, base: &str) -> String {
    if table.lookup(base).is_none() {
        return base.to_string();
    }
    let mut i = 0usize;
    loop {
        let cand = format!("{base}_{i}");
        if table.lookup(&cand).is_none() {
            return cand;
        }
        i += 1;
    }
}

/// Decodes a witness word over an extended alphabet with variables
/// `V ∪ {x}` into `(document, tuple over V, split span)`. Returns `None`
/// when the word does not contain a complete `x` window or a valid
/// `V`-tuple (should not happen for words from the guarded products).
pub fn decode_split_witness(
    ext: &ExtAlphabet,
    x: VarId,
    p_vars: &VarTable,
    word: &[Sym],
) -> Option<(Vec<u8>, SpanTuple, Span)> {
    let mut doc = Vec::new();
    let nv = p_vars.len();
    let mut opens = vec![usize::MAX; nv];
    let mut closes = vec![usize::MAX; nv];
    let mut x_open = usize::MAX;
    let mut x_close = usize::MAX;
    // Map from merged-table ids to P-table ids.
    let merged_to_p: Vec<Option<VarId>> = ext
        .vars()
        .names()
        .iter()
        .map(|n| p_vars.lookup(n))
        .collect();
    for &s in word {
        match ext.decode(s) {
            ExtSym::Class(c) => doc.push(c.first().expect("classes are non-empty")),
            ExtSym::Op(op) => {
                let pos = doc.len();
                let v = op.var();
                if v == x {
                    if op.is_open() {
                        x_open = pos;
                    } else {
                        x_close = pos;
                    }
                } else if let Some(pv) = merged_to_p[v.index()] {
                    if op.is_open() {
                        opens[pv.index()] = pos;
                    } else {
                        closes[pv.index()] = pos;
                    }
                }
            }
        }
    }
    if x_open == usize::MAX || x_close == usize::MAX {
        return None;
    }
    let mut spans = Vec::with_capacity(nv);
    for i in 0..nv {
        if opens[i] == usize::MAX || closes[i] == usize::MAX || opens[i] > closes[i] {
            return None;
        }
        spans.push(Span::new(opens[i], closes[i]));
    }
    Some((doc, SpanTuple::new(spans), Span::new(x_open, x_close)))
}

/// Builds the normalized block form of a spanner, functionalizing when
/// necessary.
pub fn normal_evsa(vsa: &Vsa) -> EVsa {
    let f = if vsa.is_functional() {
        vsa.trim()
    } else {
        vsa.functionalize()
    };
    EVsa::from_functional(&f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::rgx::Rgx;

    #[test]
    fn raw_nfa_accepts_unnormalized_refwords() {
        let v = Rgx::parse("x{a}").unwrap().to_vsa().unwrap();
        let ext = ExtAlphabet::for_automata(v.vars(), &[&v]);
        let n = raw_ext_nfa(&v, &ext);
        let x = VarId(0);
        let w = vec![
            ext.op_sym(VarOp::Open(x)),
            ext.class_sym_of_byte(b'a'),
            ext.op_sym(VarOp::Close(x)),
        ];
        assert!(n.accepts(&w));
    }

    #[test]
    fn fresh_var_name_avoids_collisions() {
        let t = VarTable::new(["x", "x_0"]).unwrap();
        assert_eq!(fresh_var_name(&t, "x"), "x_1");
        assert_eq!(fresh_var_name(&t, "y"), "y");
    }

    #[test]
    fn lifted_nfa_self_loops() {
        let v = Rgx::parse("y{a}").unwrap().to_vsa().unwrap();
        let e = normal_evsa(&v);
        let merged = VarTable::new(["x", "y"]).unwrap();
        let ext = ExtAlphabet::from_masks(merged.clone(), &v.byte_masks());
        let x = merged.lookup("x").unwrap();
        let loops = vec![ext.op_sym(VarOp::Open(x)), ext.op_sym(VarOp::Close(x))];
        let n = lifted_nfa(&e, &ext, &loops);
        let y = merged.lookup("y").unwrap();
        // x⊢ y⊢ a ⊣y ⊣x accepted thanks to the self-loops.
        let w = vec![
            ext.op_sym(VarOp::Open(x)),
            ext.op_sym(VarOp::Open(y)),
            ext.class_sym_of_byte(b'a'),
            ext.op_sym(VarOp::Close(y)),
            ext.op_sym(VarOp::Close(x)),
        ];
        assert!(n.accepts(&w));
    }
}
