//! # split-correctness
//!
//! A complete implementation of *Split-Correctness in Information
//! Extraction* (Doleschal, Kimelfeld, Martens, Nahshon, Neven; PODS
//! 2019): document spanners, splitters, and decision procedures that
//! certify when an information extractor can be evaluated independently
//! per document segment — plus the parallel/incremental execution engine
//! that cashes in on the certificate.
//!
//! ## Quick start
//!
//! ```
//! use split_correctness::prelude::*;
//!
//! // An extractor: every run of 'a's, anywhere in the document.
//! let p = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();
//! // A splitter: sentences (maximal period-free chunks).
//! let s = splitters::sentences();
//!
//! // Certify that per-sentence evaluation is equivalent (Thm 5.16).
//! assert!(self_splittable(&p, &s).unwrap().holds());
//!
//! // Evaluate in parallel over sentences — same result, distributed.
//! let spanner = ExecSpanner::compile(&p);
//! let split: SplitFn = std::sync::Arc::new(native_splitters::sentences);
//! let doc = b"aaa bb. cc aa";
//! assert_eq!(
//!     evaluate_split(&spanner, &split, doc, 4),
//!     evaluate_sequential(&spanner, doc),
//! );
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`automata`] | NFA/DFA substrate, containment, unambiguous automata |
//! | [`spanner`] | spans, ref-words, regex formulas, VSet-automata, splitters |
//! | [`core`] | the paper's decision procedures (split-correctness, splittability, …) |
//! | [`exec`] | parallel + incremental + streaming corpus execution engine |
//! | [`server`] | extraction-as-a-service: HTTP server, compile/certification caches |
//! | [`textgen`] | synthetic corpora and workload extractors |
//!
//! How the crates compose — the regex → VSA/eVSA → engine → execution
//! dataflow, the certification pipeline, engine-selection semantics,
//! and the benchmark row schema — is documented in the repository's
//! top-level `ARCHITECTURE.md`.

#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub use splitc_automata as automata;
pub use splitc_core as core;
pub use splitc_exec as exec;
pub use splitc_server as server;
pub use splitc_spanner as spanner;
pub use splitc_textgen as textgen;

/// One-stop imports for applications.
pub mod prelude {
    pub use splitc_core::{
        annotated, blackbox, canonical_split_spanner, cover_condition, cover_condition_df, filters,
        reasoning, self_splittable, self_splittable_df, split_correct, split_correct_df,
        split_correct_with, splittable, CertError, CheckStrategy, SplittabilityVerdict, Verdict,
    };
    pub use splitc_exec::{
        certify_many, evaluate_many, evaluate_many_split, evaluate_sequential, evaluate_split,
        CertPath, Certification, CertifyConfig, CertifyResult, CertifyStats, CompileOptions,
        CorpusHandle, CorpusResult, CorpusRunner, CorpusRunnerConfig, CorpusStats, DeltaStats,
        Engine, ExecSpanner, Fleet, FleetResult, FleetRunner, FleetStats, IncrementalRunner,
        RunnerOptions, SegCacheStats, Segment, SegmentCache, SplitFn, StreamingSplitter,
    };
    pub use splitc_spanner::splitter as splitters;
    pub use splitc_spanner::splitter::native as native_splitters;
    pub use splitc_spanner::{
        eval::eval, PrefilterStats, Rgx, Span, SpanRelation, SpanTuple, Splitter, VarTable, Vsa,
    };
}
