//! Property-based tests for the automata substrate.

use crate::antichain;
use crate::dfa::Dfa;
use crate::nfa::{Nfa, Sym};
use crate::ops::{contains, equivalent, Containment};
use crate::unambiguous::{is_unambiguous, ufa_contains};
use proptest::prelude::*;

/// A compact description of a random NFA for proptest shrinking.
#[derive(Debug, Clone)]
struct RandNfa {
    asize: u32,
    states: usize,
    edges: Vec<(u32, u32, u32)>, // (from, sym, to)
    finals: Vec<u32>,
}

impl RandNfa {
    fn build(&self) -> Nfa {
        let mut n = Nfa::new(self.asize);
        n.add_states(self.states);
        n.add_start(0);
        for &(f, s, t) in &self.edges {
            n.add_transition(
                f % self.states as u32,
                Sym(s % self.asize),
                t % self.states as u32,
            );
        }
        for &f in &self.finals {
            n.set_final(f % self.states as u32, true);
        }
        n
    }
}

fn rand_nfa(max_states: usize, asize: u32) -> impl Strategy<Value = RandNfa> {
    (2..=max_states).prop_flat_map(move |states| {
        (
            proptest::collection::vec((0u32..16, 0u32..8, 0u32..16), 0..20),
            proptest::collection::vec(0u32..16, 1..4),
        )
            .prop_map(move |(edges, finals)| RandNfa {
                asize,
                states,
                edges,
                finals,
            })
    })
}

/// Brute-force check whether every word of length <= max_len accepted by a
/// is accepted by b.
fn brute_contained(a: &Nfa, b: &Nfa, max_len: usize) -> Option<Vec<Sym>> {
    a.enumerate_words(max_len, usize::MAX)
        .into_iter()
        .find(|w| !b.accepts(w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn containment_agrees_with_bruteforce(
        ra in rand_nfa(6, 2),
        rb in rand_nfa(6, 2),
    ) {
        let a = ra.build();
        let b = rb.build();
        let res = contains(&a, &b);
        // Pumping bound: |A| * 2^|B| suffices, but short words catch real
        // discrepancies; rely on the counterexample check below for
        // soundness of the Contained verdict on bounded words.
        match &res {
            Containment::Contained => {
                prop_assert!(brute_contained(&a, &b, 6).is_none());
            }
            Containment::Counterexample(w) => {
                prop_assert!(a.accepts(w));
                prop_assert!(!b.accepts(w));
            }
        }
    }

    #[test]
    fn antichain_agrees_with_determinize_first(
        ra in rand_nfa(6, 3),
        rb in rand_nfa(6, 3),
    ) {
        let a = ra.build();
        let b = rb.build();
        let lazy = antichain::contains(&a, &b);
        let refr = antichain::contains_determinize_first(&a, &b);
        prop_assert_eq!(lazy.holds(), refr.holds());
        // Both searches are breadth-first, so witnesses have equal
        // (minimal) length, and each must be a genuine counterexample.
        if let (
            Containment::Counterexample(w1),
            Containment::Counterexample(w2),
        ) = (&lazy, &refr) {
            prop_assert_eq!(w1.len(), w2.len());
            prop_assert!(a.accepts(w1) && !b.accepts(w1));
            prop_assert!(a.accepts(w2) && !b.accepts(w2));
        }
    }

    #[test]
    fn determinization_preserves_language(ra in rand_nfa(6, 2)) {
        let a = ra.build();
        let d = Dfa::determinize(&a);
        for len in 0..=5usize {
            for wi in 0..(1u32 << len) {
                let w: Vec<Sym> = (0..len).map(|i| Sym((wi >> i) & 1)).collect();
                prop_assert_eq!(a.accepts(&w), d.accepts(&w));
            }
        }
    }

    #[test]
    fn hopcroft_equivalent_to_unminimized(ra in rand_nfa(6, 2)) {
        // (a) word samples: every word up to length 6 is classified
        // identically by the raw determinization and its Hopcroft
        // minimization...
        let a = ra.build();
        let d = Dfa::determinize(&a);
        let m = d.minimize_hopcroft();
        for len in 0..=6usize {
            for wi in 0..(1u32 << len) {
                let w: Vec<Sym> = (0..len).map(|i| Sym((wi >> i) & 1)).collect();
                prop_assert_eq!(d.accepts(&w), m.accepts(&w));
            }
        }
        // ...and (b) via the antichain containment check, both
        // directions, on the full (unbounded) languages.
        let dn = d.to_nfa();
        let mn = m.to_nfa();
        prop_assert!(contains(&dn, &mn).holds());
        prop_assert!(contains(&mn, &dn).holds());
    }

    #[test]
    fn hopcroft_is_fixpoint_and_minimal(ra in rand_nfa(6, 2)) {
        let a = ra.build();
        let m = Dfa::determinize(&a).minimize_hopcroft();
        // Fixpoint: re-minimizing cannot merge or drop anything.
        let mm = m.minimize_hopcroft();
        prop_assert_eq!(mm.num_states(), m.num_states());
        // Agreement with the Moore minimizer on state count (both are
        // minimal up to the treatment of the dead state, which Hopcroft
        // prunes and Moore may keep reachable).
        let moore = Dfa::determinize(&a).minimize();
        prop_assert!(m.num_states() <= moore.num_states());
    }

    #[test]
    fn trim_preserves_language(ra in rand_nfa(6, 2)) {
        let a = ra.build();
        let t = a.trim();
        prop_assert!(equivalent(&a, &t).holds());
    }

    #[test]
    fn reverse_is_involution(ra in rand_nfa(5, 2)) {
        let a = ra.build();
        let rr = a.reverse().reverse();
        prop_assert!(equivalent(&a, &rr).holds());
    }

    #[test]
    fn ufa_containment_agrees_when_unambiguous(
        ra in rand_nfa(5, 2),
        rb in rand_nfa(5, 2),
    ) {
        let a = ra.build();
        let b = rb.build();
        if is_unambiguous(&a) && is_unambiguous(&b) {
            let fast = ufa_contains(&a, &b).unwrap();
            let slow = contains(&a, &b).holds();
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn union_accepts_both(ra in rand_nfa(5, 2), rb in rand_nfa(5, 2)) {
        let a = ra.build();
        let b = rb.build();
        let u = a.union(&b);
        prop_assert!(contains(&a, &u).holds());
        prop_assert!(contains(&b, &u).holds());
        // And nothing more.
        for w in u.enumerate_words(5, 200) {
            prop_assert!(a.accepts(&w) || b.accepts(&w));
        }
    }

    #[test]
    fn intersection_is_conjunction(ra in rand_nfa(5, 2), rb in rand_nfa(5, 2)) {
        let a = ra.build().remove_eps();
        let b = rb.build().remove_eps();
        let i = a.intersect(&b);
        for len in 0..=5usize {
            for wi in 0..(1u32 << len) {
                let w: Vec<Sym> = (0..len).map(|k| Sym((wi >> k) & 1)).collect();
                prop_assert_eq!(i.accepts(&w), a.accepts(&w) && b.accepts(&w));
            }
        }
    }
}
