//! N-gram extraction over a Wikipedia-like corpus — the paper's first
//! motivating experiment (§1 "Further motivation"): split the document
//! into sentences, distribute the chunks over a worker pool, and compare
//! against whole-document evaluation.
//!
//! Also demonstrates the §3.1 N-gram fact: the adjacent-token-pair
//! extractor is self-splittable by 2-grams but not by 1-grams.
//!
//! ```sh
//! cargo run --release --example ngram_pipeline
//! ```

use split_correctness::prelude::*;
use split_correctness::textgen::{self, CorpusConfig};
use splitc_textgen::spanners;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // --- Formal certification on the automaton level -------------------
    let bigrams = spanners::ngram_extractor(2);
    let sentences = splitters::sentences();
    println!("certifying: 2-gram extractor vs sentence splitter…");
    match self_splittable(&bigrams, &sentences).unwrap() {
        Verdict::Holds => println!("✓ N-gram extraction is self-splittable by sentences"),
        Verdict::Fails(cex) => {
            println!("✗ unexpected: {cex}");
            return;
        }
    }

    // §3.1: token-pair proximity vs N-gram splitters.
    let pair = Rgx::parse("(.*[^A-Za-z0-9]|)e{[ab]+} p{[ab]+}([^A-Za-z0-9].*|)")
        .unwrap()
        .to_vsa()
        .unwrap();
    let holds2 = self_splittable(&pair, &splitters::ngrams(2))
        .unwrap()
        .holds();
    let holds1 = self_splittable(&pair, &splitters::ngrams(1))
        .unwrap()
        .holds();
    println!("adjacent-pair extractor: splittable by 2-grams = {holds2}, by 1-grams = {holds1}");

    // --- The measured pipeline -----------------------------------------
    let cfg = CorpusConfig {
        target_bytes: 4 << 20, // 4 MiB demo; the bench harness scales up
        ..Default::default()
    };
    let doc = textgen::wiki_corpus(&cfg);
    // `CompileOptions` defaults to the dense engine (byte-class tables
    // + lazy DFA); compare against the plain NFA simulation on the same
    // corpus — one builder, two engine requests.
    let spanner = CompileOptions::new().compile_spanner(&bigrams);
    let nfa_spanner = CompileOptions::new()
        .engine(Engine::Nfa)
        .compile_spanner(&bigrams);
    let split: SplitFn = Arc::new(native_splitters::sentences);

    let t0 = Instant::now();
    let seq_nfa = evaluate_sequential(&nfa_spanner, &doc);
    let t_nfa = t0.elapsed();
    let t0 = Instant::now();
    let seq = evaluate_sequential(&spanner, &doc);
    let t_seq = t0.elapsed();
    assert_eq!(seq, seq_nfa, "engines agree");
    println!(
        "engines: nfa {:?} vs dense {:?} ({:.2}x) on whole-document evaluation",
        t_nfa,
        t_seq,
        t_nfa.as_secs_f64() / t_seq.as_secs_f64().max(1e-9),
    );

    for workers in [1, 2, 5] {
        let t0 = Instant::now();
        let par = evaluate_split(&spanner, &split, &doc, workers);
        let t = t0.elapsed();
        assert_eq!(seq, par, "semantics preserved");
        println!(
            "2-grams: {:7} tuples | sequential {:?} | split+{workers} workers {:?} | speedup {:.2}x",
            par.len(),
            t_seq,
            t,
            t_seq.as_secs_f64() / t.as_secs_f64().max(1e-9),
        );
    }
}
