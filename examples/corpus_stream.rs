//! Streaming sharded corpus execution: split documents *while reading
//! them*, fan segments out to a bounded-queue worker pool, and aggregate
//! per-document results — without ever materializing a document.
//!
//! ```sh
//! cargo run --release --example corpus_stream
//! ```

use split_correctness::prelude::*;
use split_correctness::textgen::{self, CorpusConfig};

fn main() {
    // 1. An extractor (every alphanumeric token) and a splitter
    //    (sentences), certified self-splittable: per-segment evaluation
    //    provably equals whole-document evaluation (Thm 5.16).
    let p = Rgx::parse("(.*[^A-Za-z0-9]|)x{[A-Za-z0-9]+}([^A-Za-z0-9].*|)")
        .unwrap()
        .to_vsa()
        .unwrap();
    let s = splitters::sentences();
    assert!(self_splittable(&p, &s).unwrap().holds());
    println!("token extractor certified self-splittable by sentences ✓");

    // 2. A sharded corpus, generated as paragraph-chunk streams — the
    //    chunks go straight into the pipeline, no shard is materialized.
    let cfg = CorpusConfig {
        target_bytes: 64 << 10,
        ..Default::default()
    };
    let shards = 8;

    // 3. Stream the corpus through the runner: incremental splitting on
    //    this thread, batched segments over a bounded queue, 4 workers
    //    evaluating with per-worker lazy-DFA caches.
    let runner = CorpusRunner::new(
        ExecSpanner::compile(&p),
        s.compile(),
        CorpusRunnerConfig {
            workers: 4,
            ..Default::default()
        },
    );
    let result = runner.run_streams(textgen::wiki_corpus_shards(shards, &cfg));
    let stats = result.stats;
    let tuples: usize = result.relations.iter().map(|r| r.len()).sum();
    println!(
        "{tuples} tokens from {} documents / {} segments ({} bytes) in {} batches",
        stats.docs, stats.segments, stats.segment_bytes, stats.batches,
    );
    println!(
        "lazy-DFA cache hit rate {:.4}; peak stream buffer {} bytes \
         (vs {} corpus bytes — memory stays at segment + chunk scale)",
        stats.cache.hit_rate(),
        stats.peak_buffered_bytes,
        stats.segment_bytes,
    );

    // 4. The certificate in action: the streamed result equals batch
    //    evaluation of the materialized corpus.
    let owned: Vec<Vec<u8>> = textgen::wiki_corpus_shards(shards, &cfg)
        .into_iter()
        .map(|sh| sh.flatten().collect())
        .collect();
    let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
    let spanner = ExecSpanner::compile(&p);
    let split: SplitFn = std::sync::Arc::new(native_splitters::sentences);
    let batch = evaluate_many_split(&spanner, &split, &refs, 4);
    assert_eq!(result.relations, batch, "streaming equals batch semantics");
    println!("streamed relations equal materialized batch evaluation ✓");
}
