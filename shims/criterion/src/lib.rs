//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the surface this workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], [`Throughput`],
//! and [`Bencher::iter`] — but reports simple best-of-N wall-clock times
//! as plain text instead of criterion's statistical analysis, plots, and
//! baselines. Good enough to keep the benches compiling, runnable, and
//! honest about relative cost; not a substitute for real criterion
//! numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), 10, None, &mut f);
        self
    }
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Declares input throughput so results can be read as bytes/sec or
    /// elements/sec.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, shown as `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Input magnitude per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    best: Duration,
    samples: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples, keeping
    /// the best (minimum) wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        best: Duration::MAX,
        samples,
    };
    f(&mut b);
    let secs = b.best.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if secs > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / secs / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if secs > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / secs)
        }
        _ => String::new(),
    };
    println!("bench {label}: best of {samples} = {:?}{rate}", b.best);
}

/// Prevents the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`. Passing `--test` (as `cargo test`
/// does for bench targets) still runs every benchmark once per sample,
/// so groups should keep `sample_size` small.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(b))
    }

    fn bench_sum(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1000));
        for n in [10u64, 1000] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| sum_to(n))
            });
        }
        group.bench_function("fixed", |b| b.iter(|| sum_to(77)));
        group.finish();
    }

    criterion_group!(benches, bench_sum);

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("seq", 3).to_string(), "seq/3");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
