//! One front door for engine and runner construction.
//!
//! The execution layer grew one entry point per knob combination —
//! `ExecSpanner::{compile, compile_with, compile_with_config}`,
//! `Fleet::{compile, compile_with, compile_evsas}`,
//! `Splitter::{compile, compile_with, compile_tiered}`, and
//! `{Corpus,Fleet}Runner::{new, with_pool}` — which composed badly (a
//! caller wanting "AOT splitter + starved dense cache + shared pool +
//! segment cache" had to know four different signatures). This module
//! collapses them behind two builders:
//!
//! * [`CompileOptions`] — *what to compile*: the engine request, the
//!   dense-engine budget and skip-loop, and an optional shared byte
//!   partition. One options value compiles spanners, fleets, and
//!   splitters consistently.
//! * [`RunnerOptions`] — *how to run*: worker/batch/queue/chunk tuning,
//!   an optional shared [`EvalPool`], and an optional shared
//!   [`SegmentCache`]. One options value constructs both runner kinds.
//!
//! The legacy entry points remain as thin delegating wrappers, so
//! existing callers (and the benchmark fleet) are untouched.
//!
//! ```
//! use splitc_exec::{CompileOptions, RunnerOptions, Engine};
//! use splitc_spanner::{rgx::Rgx, splitter};
//!
//! let vsa = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();
//! let opts = CompileOptions::new().engine(Engine::Prefilter).skip_loop(true);
//! let spanner = opts.compile_spanner(&vsa);
//! let split = opts.compile_splitter(&splitter::sentences());
//! let runner = RunnerOptions::new().workers(2).corpus_runner(spanner, split);
//! let out = runner.run_slices(&[b"aa b. aaa"]);
//! assert_eq!(out.relations.len(), 1);
//! ```

use crate::corpus::{CorpusRunner, CorpusRunnerConfig};
use crate::engine::{Engine, ExecSpanner};
use crate::fleet::{Fleet, FleetRunner};
use crate::pool::EvalPool;
use crate::segcache::SegmentCache;
use splitc_automata::classes::ByteClasses;
use splitc_spanner::aot::AotConfig;
use splitc_spanner::dense::DenseConfig;
use splitc_spanner::evsa::EVsa;
use splitc_spanner::splitter::{CompiledSplitter, Splitter};
use splitc_spanner::vsa::Vsa;
use std::sync::Arc;

/// Builder for every compile-time choice of the execution layer: which
/// engine tier to request, how the dense tier is budgeted, and whether
/// to index tables by an externally shared byte partition. See the
/// [module docs](self) for the sprawl this replaces.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    engine: Engine,
    dense: DenseConfig,
    classes: Option<ByteClasses>,
}

impl CompileOptions {
    /// Default options: [`Engine::Dense`] with the default
    /// [`DenseConfig`], no shared partition.
    pub fn new() -> CompileOptions {
        CompileOptions::default()
    }

    /// Requests an engine tier (compile-time tiering may still degrade
    /// an [`Engine::Aot`] request; see [`ExecSpanner::tier`]).
    pub fn engine(mut self, engine: Engine) -> CompileOptions {
        self.engine = engine;
        self
    }

    /// Replaces the whole dense-engine configuration at once.
    pub fn dense(mut self, config: DenseConfig) -> CompileOptions {
        self.dense = config;
        self
    }

    /// Bounds the lazy-DFA cache (states) of the dense tier — the knob
    /// the differential harnesses turn to starve caches.
    pub fn max_cache_states(mut self, states: usize) -> CompileOptions {
        self.dense.max_cache_states = states;
        self
    }

    /// Enables the SWAR skip-loop over dense self-loop states.
    pub fn skip_loop(mut self, on: bool) -> CompileOptions {
        self.dense.skip_loop = on;
        self
    }

    /// Indexes dense tables by an externally shared byte partition
    /// (e.g. one computed across a fleet) instead of the automaton's own
    /// classes. Applies to single-spanner compiles; [`Fleet`] compiles
    /// always compute their members' common refinement themselves.
    pub fn shared_classes(mut self, classes: ByteClasses) -> CompileOptions {
        self.classes = Some(classes);
        self
    }

    /// The requested engine.
    pub fn requested_engine(&self) -> Engine {
        self.engine
    }

    /// The dense-engine configuration.
    pub fn dense_config(&self) -> DenseConfig {
        self.dense
    }

    /// Compiles one spanner (functionalization + block normal form +
    /// the requested engine tier). Subsumes `ExecSpanner::compile`,
    /// `compile_with`, and `compile_with_config`.
    pub fn compile_spanner(&self, vsa: &Vsa) -> ExecSpanner {
        let f = if vsa.is_functional() {
            vsa.trim()
        } else {
            vsa.functionalize()
        };
        self.compile_evsa(Arc::new(EVsa::from_functional(&f)))
    }

    /// Compiles a spanner from an already-normalized automaton.
    pub fn compile_evsa(&self, evsa: Arc<EVsa>) -> ExecSpanner {
        ExecSpanner::from_evsa(evsa, self.engine, self.classes.clone(), self.dense)
    }

    /// Compiles a fleet for fused evaluation. The fleet computes the
    /// coarsest common refinement of its members itself, so any
    /// [`CompileOptions::shared_classes`] setting is ignored here.
    pub fn compile_fleet(&self, vsas: &[Vsa]) -> Fleet {
        Fleet::compile_with(vsas, self.engine, self.dense)
    }

    /// Compiles a splitter on the tier matching the engine request: an
    /// [`Engine::Aot`] request compiles the tiered (AOT-with-fallback)
    /// splitter, everything else the dense one with this configuration.
    pub fn compile_splitter(&self, splitter: &Splitter) -> CompiledSplitter {
        match self.engine {
            Engine::Aot => splitter.compile_tiered(AotConfig {
                dense: self.dense,
                ..AotConfig::default()
            }),
            _ => splitter.compile_with(self.dense),
        }
    }
}

/// Builder for runner construction: pipeline tuning plus the two shared
/// resources (worker pool, segment cache) a service threads through
/// every request. Subsumes `{Corpus,Fleet}Runner::{new, with_pool}` and
/// the `with_segment_cache` modifiers.
#[derive(Debug, Clone, Default)]
pub struct RunnerOptions {
    config: CorpusRunnerConfig,
    pool: Option<Arc<EvalPool>>,
    segment_cache: Option<Arc<SegmentCache>>,
}

impl RunnerOptions {
    /// Default options: [`CorpusRunnerConfig::default`], per-run spawned
    /// workers, no segment cache.
    pub fn new() -> RunnerOptions {
        RunnerOptions::default()
    }

    /// Replaces the whole pipeline configuration at once.
    pub fn config(mut self, config: CorpusRunnerConfig) -> RunnerOptions {
        self.config = config;
        self
    }

    /// Evaluation worker threads (see [`CorpusRunnerConfig::workers`]).
    pub fn workers(mut self, n: usize) -> RunnerOptions {
        self.config.workers = n;
        self
    }

    /// Target payload per dispatched batch
    /// (see [`CorpusRunnerConfig::batch_bytes`]).
    pub fn batch_bytes(mut self, n: usize) -> RunnerOptions {
        self.config.batch_bytes = n;
        self
    }

    /// Bounded queue capacity, in batches
    /// (see [`CorpusRunnerConfig::queue_depth`]).
    pub fn queue_depth(mut self, n: usize) -> RunnerOptions {
        self.config.queue_depth = n;
        self
    }

    /// Chunk size for materialized documents
    /// (see [`CorpusRunnerConfig::chunk_bytes`]).
    pub fn chunk_bytes(mut self, n: usize) -> RunnerOptions {
        self.config.chunk_bytes = n;
        self
    }

    /// Runs evaluation workers on a shared long-lived pool instead of
    /// per-run spawned threads.
    pub fn pool(mut self, pool: Arc<EvalPool>) -> RunnerOptions {
        self.pool = Some(pool);
        self
    }

    /// Attaches a shared content-addressed segment cache (see
    /// [`SegmentCache`]); results are byte-identical with or without.
    pub fn segment_cache(mut self, cache: Arc<SegmentCache>) -> RunnerOptions {
        self.segment_cache = Some(cache);
        self
    }

    /// The pipeline configuration.
    pub fn runner_config(&self) -> CorpusRunnerConfig {
        self.config
    }

    /// Constructs a [`CorpusRunner`] with these options. The options
    /// value is reusable — shared resources are cloned in, not moved.
    pub fn corpus_runner(&self, spanner: ExecSpanner, splitter: CompiledSplitter) -> CorpusRunner {
        let runner = match &self.pool {
            Some(pool) => CorpusRunner::with_pool(spanner, splitter, self.config, pool.clone()),
            None => CorpusRunner::new(spanner, splitter, self.config),
        };
        match &self.segment_cache {
            Some(cache) => runner.with_segment_cache(cache.clone()),
            None => runner,
        }
    }

    /// Constructs a [`FleetRunner`] with these options.
    pub fn fleet_runner(&self, fleet: Arc<Fleet>, splitter: CompiledSplitter) -> FleetRunner {
        let runner = match &self.pool {
            Some(pool) => FleetRunner::with_pool(fleet, splitter, self.config, pool.clone()),
            None => FleetRunner::new(fleet, splitter, self.config),
        };
        match &self.segment_cache {
            Some(cache) => runner.with_segment_cache(cache.clone()),
            None => runner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;

    fn vsa(pat: &str) -> Vsa {
        Rgx::parse(pat).unwrap().to_vsa().unwrap()
    }

    #[test]
    fn options_match_legacy_entry_points() {
        let v = vsa(".*x{a+}.*");
        let docs: Vec<&[u8]> = vec![b"aa bb. aaa. b aa", b"", b"a.a.a."];
        for engine in [Engine::Nfa, Engine::Dense, Engine::Prefilter, Engine::Aot] {
            let via_options = CompileOptions::new().engine(engine).compile_spanner(&v);
            let legacy = ExecSpanner::compile_with(&v, engine);
            assert_eq!(via_options.engine(), legacy.engine());
            assert_eq!(via_options.tier(), legacy.tier());
            for d in &docs {
                assert_eq!(via_options.eval(d), legacy.eval(d), "{engine:?}");
            }
        }
    }

    #[test]
    fn dense_knobs_apply() {
        let opts = CompileOptions::new().max_cache_states(3).skip_loop(true);
        assert_eq!(opts.dense_config().max_cache_states, 3);
        assert!(opts.dense_config().skip_loop);
        // A starved cache still evaluates exactly.
        let sp = opts.compile_spanner(&vsa(".*x{a+}.*"));
        let full = ExecSpanner::compile(&vsa(".*x{a+}.*"));
        assert_eq!(sp.eval(b"aa b aaa"), full.eval(b"aa b aaa"));
    }

    #[test]
    fn runner_options_build_equivalent_runners() {
        let docs: Vec<&[u8]> = vec![b"aa bb. aaa. b aa", b"", b"a.a.a."];
        let legacy = CorpusRunner::new(
            ExecSpanner::compile(&vsa(".*x{a+}.*")),
            splitter::sentences().compile(),
            CorpusRunnerConfig::default(),
        )
        .run_slices(&docs);
        let pool = Arc::new(EvalPool::new(2));
        let cache = Arc::new(SegmentCache::new(128));
        let opts = RunnerOptions::new()
            .workers(2)
            .batch_bytes(8)
            .pool(pool.clone())
            .segment_cache(cache.clone());
        // Options are reusable: two runners from one value, and the
        // second run hits the segment cache the first populated.
        for _ in 0..2 {
            let runner = opts.corpus_runner(
                CompileOptions::new().compile_spanner(&vsa(".*x{a+}.*")),
                CompileOptions::new().compile_splitter(&splitter::sentences()),
            );
            assert_eq!(runner.run_slices(&docs).relations, legacy.relations);
        }
        assert!(pool.stats().submitted > 0, "pool was used");
        assert!(cache.stats().misses > 0, "cache was populated");
        // Note: distinct compilations get distinct cache ids, so the
        // second runner misses; sharing hits require a shared spanner.
        let shared = CompileOptions::new().compile_spanner(&vsa(".*x{a+}.*"));
        cache.reset_stats();
        for _ in 0..2 {
            let runner = opts.corpus_runner(
                shared.clone(),
                CompileOptions::new().compile_splitter(&splitter::sentences()),
            );
            assert_eq!(runner.run_slices(&docs).relations, legacy.relations);
        }
        let s = cache.stats();
        assert!(s.hits > 0, "second run over a shared spanner hits: {s:?}");
    }

    #[test]
    fn fleet_runner_via_options() {
        let pats = [".*x{a+}.*", "x{[0-9]+}"];
        let vsas: Vec<Vsa> = pats.iter().map(|p| vsa(p)).collect();
        let docs: Vec<&[u8]> = vec![b"aa 42. bbb 7 aa", b""];
        let opts = CompileOptions::new().engine(Engine::Prefilter);
        let fleet = Arc::new(opts.compile_fleet(&vsas));
        let got = RunnerOptions::new()
            .workers(2)
            .segment_cache(Arc::new(SegmentCache::new(64)))
            .fleet_runner(fleet.clone(), opts.compile_splitter(&splitter::sentences()))
            .run_slices(&docs);
        let legacy = FleetRunner::new(
            Arc::new(Fleet::compile_with(
                &vsas,
                Engine::Prefilter,
                DenseConfig::default(),
            )),
            splitter::sentences().compile(),
            CorpusRunnerConfig::default(),
        )
        .run_slices(&docs);
        assert_eq!(got.relations, legacy.relations);
    }
}
