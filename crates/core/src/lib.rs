#![warn(missing_docs)]
//! Decision procedures for split-correctness, splittability and
//! self-splittability of document spanners — the primary contribution of
//! *Split-Correctness in Information Extraction* (Doleschal, Kimelfeld,
//! Martens, Nahshon, Neven; PODS 2019).
//!
//! | Paper result | API |
//! |---|---|
//! | Thm 5.1 — split-correctness, PSPACE | [`split_correct`] |
//! | Thm 5.7 — PTIME for dfVSA + disjoint splitters | [`split_correct_df`] |
//! | Lemma 5.3/5.4 — cover condition | [`cover::cover_condition`] |
//! | Lemma 5.6 — PTIME cover condition | [`cover::cover_condition_df`] |
//! | Prop 5.9 — canonical split-spanner | [`splittability::canonical_split_spanner`] |
//! | Thm 5.15 — splittability for disjoint splitters | [`splittability::splittable`] |
//! | Thm 5.16/5.17 — self-splittability | [`self_splittable`], [`self_splittable_df`] |
//! | §6 — splitter commutativity, subsumption, transitivity | [`reasoning`] |
//! | §7.1 — split-constrained black boxes | [`blackbox`] |
//! | §7.2 — regular preconditions / filters | [`filters`] |
//! | §7.3 / App. E — annotated splitters | [`annotated`] |
//!
//! All procedures operate on order-normalized valid ref-word languages
//! (see `splitc_spanner::equiv`), so "spanner equality" below is exactly
//! the paper's `P = P′` (same output relation on every document).

pub mod annotated;
pub mod blackbox;
pub mod cache;
pub mod cover;
pub mod error;
pub mod filters;
pub mod reasoning;
pub mod split_correctness;
pub mod splittability;
pub(crate) mod util;

pub use cache::{content_hash, CertCache, CertCacheStats, CertKey};
pub use cover::{cover_condition, cover_condition_df};
pub use error::CertError;
pub use split_correctness::{
    self_splittable, self_splittable_df, split_correct, split_correct_composed, split_correct_df,
    split_correct_df_prechecked, split_correct_with, CounterExample, FastPathError, Verdict,
};
pub use splittability::{canonical_split_spanner, splittable, SplittabilityVerdict};

// Re-exported so certification callers can pick a containment engine
// without depending on `splitc-spanner` directly.
pub use splitc_spanner::equiv::CheckStrategy;

#[cfg(test)]
mod proptests;
