//! The dense evaluation engine: byte-class tables + a lazy DFA cache.
//!
//! The NFA engine ([`crate::eval`]) walks raw 256-byte [`ByteSet`]
//! transitions state-by-state at every document position. This module
//! compiles an [`EVsa`] once into a form that makes the per-byte work
//! nearly constant:
//!
//! 1. **Alphabet compression** — the coarsest [`ByteClasses`] partition
//!    refining every transition byte set, shared with the automata
//!    substrate. Realistic spanners distinguish a handful of classes, so
//!    tables indexed by class are tiny.
//! 2. **Dense per-state tables** — for every `(state, class)` pair, the
//!    precompiled list of matching transitions (no mask tests at match
//!    time) plus deduplicated successor/predecessor state sets.
//! 3. **A lazily-determinized DFA cache** — power-set states built on
//!    demand while scanning a document, memoized per compiled automaton
//!    so repeated evaluations (chunked corpora!) pay determinization
//!    once. The cache is memory-bounded: when a scan would intern more
//!    than [`DenseConfig::max_cache_states`] distinct sets, the engine
//!    falls back to the exact NFA simulation, so results never change —
//!    only speed.
//!
//! The lazy DFA runs in two directions: forward for Boolean acceptance
//! ([`DenseEvsa::accepts`]) and backward for the viability pass feeding
//! tuple enumeration ([`DenseEvsa::eval`]), which then reuses the shared
//! forward search of [`crate::eval`] over the dense tables.

use crate::byteset::ByteSet;
use crate::eval::{
    self, forward_enumerate_scratch, post_states, EdgeCandidates, EdgeSource, EnumScratch,
    ViableSource,
};
use crate::evsa::EVsa;
use crate::tuple::SpanRelation;
use splitc_automata::classes::{ByteClassBuilder, ByteClasses};
use splitc_automata::nfa::StateId;
use splitc_automata::scan::ByteFinder;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Source of unique per-[`DenseEvsa`] identities, used by
/// [`DenseCache`] ownership tracking.
static ENGINE_IDS: AtomicU64 = AtomicU64::new(0);

/// Tuning knobs of the dense engine.
///
/// The single knob trades memory for lazy-DFA coverage. The governing
/// invariant — relied on throughout the workspace and asserted by the
/// differential test suites — is **fallback-on-overflow**: a scan that
/// would exceed the bound switches to the exact NFA simulation for that
/// scan, so any configuration (including an absurdly small one) changes
/// speed only, never results. Raise the bound for spanners whose
/// power-set construction is genuinely large but still wanted on the
/// fast path; lower it to cap worst-case memory per
/// [`DenseCache`] (each interned state costs `⌈|Q|/64⌉` words plus one
/// `u32` row per byte class).
#[derive(Debug, Clone, Copy)]
pub struct DenseConfig {
    /// Upper bound on interned power-set states per lazy DFA direction.
    /// When a document scan would exceed it, the engine falls back to
    /// the exact NFA simulation for that scan (results are unchanged).
    pub max_cache_states: usize,
    /// Enables the **skip-loop**: when a scan detects that the lazy DFA
    /// sits in a self-loop (the successor power-set state equals the
    /// current one), the engine probes which byte classes stay in the
    /// loop and jumps via a SWAR scanner
    /// ([`splitc_automata::scan::ByteFinder`]) to the next escape byte
    /// instead of stepping the transition table byte by byte. Exact by
    /// construction — skipped positions provably keep the same DFA state
    /// — so the flag changes speed only, never results (the prefilter
    /// differential suite asserts this). Off by default; the prefilter
    /// engine ([`crate::prefilter`]) turns it on.
    pub skip_loop: bool,
}

impl Default for DenseConfig {
    fn default() -> Self {
        // Power-set blowups of practical spanners are far smaller; the
        // bound exists to keep adversarial automata from hoarding memory
        // (each state costs `⌈|Q|/64⌉` words + one row of `u32`s).
        DenseConfig {
            max_cache_states: 8192,
            skip_loop: false,
        }
    }
}

/// Sentinel for a not-yet-computed lazy-DFA transition.
const UNEXPLORED: u32 = u32::MAX;

/// Consecutive self-steps a scan must observe before it consults the
/// skip-loop scanner. Match-dense inputs oscillate between states every
/// few bytes; gating on a streak keeps their overhead to one counter
/// increment per byte, while genuinely flat regions reach the threshold
/// immediately and jump the rest in one scan.
const SKIP_STREAK: u32 = 8;

/// Transition-level statistics of one [`DenseCache`], aggregated over
/// both lazy-DFA directions.
///
/// A *hit* is a scan step answered by a memoized `(state, class)` row; a
/// *miss* computes (and interns) the successor power-set state. Because
/// the cache persists across documents, the hit rate of a chunked corpus
/// converges towards 1 — this is the number the streaming corpus runner
/// reports per worker to show that lazy determinization is amortized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DenseCacheStats {
    /// Lazy-DFA steps answered from a memoized transition row.
    pub hits: u64,
    /// Lazy-DFA steps that had to compute the successor state.
    pub misses: u64,
}

impl DenseCacheStats {
    /// Hits as a fraction of all steps (0.0 for an unused cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum (for aggregating per-worker caches).
    pub fn merge(self, other: DenseCacheStats) -> DenseCacheStats {
        DenseCacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// One direction of the lazily-determinized DFA: interned power-set
/// states (bitsets over the eVSA states) and a dense `state × class`
/// transition table filled on demand.
#[derive(Debug, Default)]
struct LazyDfa {
    /// Interned state sets; index = DFA state id.
    sets: Vec<Box<[u64]>>,
    ids: HashMap<Box<[u64]>, u32>,
    /// `rows[id * num_classes + class]` → successor id or [`UNEXPLORED`].
    rows: Vec<u32>,
    /// Memoized skip-loop probes per interned state: `Some(finder)` =
    /// the state self-loops on most bytes and the finder locates the
    /// escape bytes; `None` = skipping is not worthwhile here.
    loops: HashMap<u32, Option<ByteFinder>>,
    /// Steps answered from a memoized row.
    hits: u64,
    /// Steps that computed a successor.
    misses: u64,
}

impl LazyDfa {
    /// Drops the interned states, rows and loop probes; the hit/miss
    /// counters survive (they describe the scan history, not the current
    /// contents).
    fn clear(&mut self) {
        self.sets.clear();
        self.ids.clear();
        self.rows.clear();
        self.loops.clear();
    }
}

/// Scratch state for dense scans: the two lazy DFAs plus a reusable
/// per-position buffer. Caches persist across documents (that is the
/// point of *lazy* determinization); obtain one per worker via the
/// compiled automaton's internal pool.
///
/// A cache is safe to hand between different compiled engines: every
/// interned power set and transition row is meaningful only for the
/// [`DenseEvsa`] that produced it (the state numbering *and* the byte
/// classes differ across engines), so each engine stamps the caches it
/// uses with its own identity and resets the lazy DFAs on an ownership
/// change. Fleets with one cache per member never pay the reset; a
/// cache shuttled between members (the latent aliasing hazard) degrades
/// to correct-but-cold scans instead of corrupting results.
#[derive(Debug, Default)]
pub struct DenseCache {
    fwd: LazyDfa,
    bwd: LazyDfa,
    /// Identity of the [`DenseEvsa`] whose lazy-DFA state this cache
    /// currently holds (`None` = fresh).
    owner: Option<u64>,
    /// Backward-DFA state id per document position (`len = doc.len()+1`).
    /// Shared with the AOT engine ([`crate::aot`]), which rewrites it
    /// wholesale per scan (no ownership hazard: nothing lazy survives).
    pub(crate) ids_buf: Vec<u32>,
    /// Bytes resolved by the skip-loop scanner instead of table steps.
    pub(crate) skipped: u64,
    /// Reusable forward-enumeration buffers (variable tables, undo
    /// trail, frame stack), shared across every document this cache
    /// evaluates.
    pub(crate) scratch: EnumScratch,
}

impl DenseCache {
    /// Transition-level hit/miss statistics accumulated by every scan
    /// that used this cache (both DFA directions combined). Counters
    /// survive overflow-triggered cache resets.
    pub fn stats(&self) -> DenseCacheStats {
        DenseCacheStats {
            hits: self.fwd.hits + self.bwd.hits,
            misses: self.fwd.misses + self.bwd.misses,
        }
    }

    /// Bytes this cache resolved through the skip-loop scanner instead
    /// of stepping the transition table (0 unless
    /// [`DenseConfig::skip_loop`] is on). Monotone across scans, like
    /// the hit/miss counters.
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped
    }
}

/// An [`EVsa`] compiled for the dense engine.
///
/// Construction cost is `O(|Q| · classes + |δ|)`; evaluation reuses the
/// compiled tables and an internal pool of [`DenseCache`]s, so the type
/// is cheap to share across worker threads (wrap in `Arc`).
#[derive(Debug)]
pub struct DenseEvsa {
    evsa: Arc<EVsa>,
    config: DenseConfig,
    /// Unique identity for [`DenseCache`] ownership checks.
    engine_id: u64,
    classes: ByteClasses,
    /// Number of byte classes. The adjacency CSRs below are shared with
    /// the AOT engine ([`crate::aot`]), which determinizes them eagerly.
    pub(crate) nc: usize,
    /// Number of eVSA states.
    ns: usize,
    /// Bitset words per power-set state.
    pub(crate) words: usize,
    /// CSR of transition indices per `(state, class)`; values index into
    /// `evsa.transitions_from(state)`.
    edge_off: Vec<u32>,
    edge_pool: Vec<u32>,
    /// CSR of deduplicated successor states per `(state, class)`.
    pub(crate) succ_off: Vec<u32>,
    pub(crate) succ_pool: Vec<StateId>,
    /// CSR of deduplicated predecessor states per `(state, class)`.
    pub(crate) pred_off: Vec<u32>,
    pub(crate) pred_pool: Vec<StateId>,
    /// States with at least one final block, as a bitset.
    pub(crate) finals: Box<[u64]>,
    /// `{start}` as a bitset.
    pub(crate) start_set: Box<[u64]>,
    /// Post flags (see [`crate::eval`]), precomputed once.
    pub(crate) post: Vec<bool>,
    /// Reusable scan caches, one handed to each concurrent evaluation.
    caches: Mutex<Vec<DenseCache>>,
}

/// Flattens per-key vectors into CSR offsets + pool.
fn to_csr<T: Copy>(per_key: Vec<Vec<T>>) -> (Vec<u32>, Vec<T>) {
    let mut off = Vec::with_capacity(per_key.len() + 1);
    let mut pool = Vec::new();
    off.push(0u32);
    for v in per_key {
        pool.extend_from_slice(&v);
        off.push(pool.len() as u32);
    }
    (off, pool)
}

impl DenseEvsa {
    /// Compiles the dense tables for `evsa` over the coarsest byte
    /// partition refining its own transition masks.
    pub fn compile(evsa: Arc<EVsa>, config: DenseConfig) -> DenseEvsa {
        let mut builder = ByteClassBuilder::new();
        for m in evsa.byte_masks() {
            builder.add_set(|b| m.contains(b));
        }
        DenseEvsa::compile_with_classes(evsa, config, builder.build())
    }

    /// Compiles the dense tables for `evsa` over a caller-supplied byte
    /// partition. The fleet engine uses this to index every member's
    /// tables by one shared partition (the coarsest common refinement
    /// across all members), so a single `class_of` lookup per scanned
    /// byte serves the whole fleet.
    ///
    /// # Panics
    ///
    /// `classes` must **refine** every transition mask of the automaton
    /// (no class straddles a mask boundary) — simulation over classes is
    /// exact only under refinement. Violations panic at compile time
    /// rather than corrupting scans.
    pub fn compile_with_classes(
        evsa: Arc<EVsa>,
        config: DenseConfig,
        classes: ByteClasses,
    ) -> DenseEvsa {
        for m in evsa.byte_masks() {
            for c in 0..classes.num_classes() {
                let mut members = classes.bytes_of(c).map(|b| m.contains(b));
                let first = members.next().expect("classes are non-empty");
                assert!(
                    members.all(|x| x == first),
                    "byte partition does not refine a transition mask \
                     (class {c} straddles the mask boundary)"
                );
            }
        }
        let ns = evsa.num_states();
        let nc = classes.num_classes();
        let reps = classes.representatives();
        let words = ns.div_ceil(64);

        // Classes refine every mask, so membership of the representative
        // byte decides membership of the whole class.
        let mut class_cache: HashMap<ByteSet, Vec<u16>> = HashMap::new();
        let mut classes_of_mask = |m: &ByteSet| -> Vec<u16> {
            class_cache
                .entry(*m)
                .or_insert_with(|| {
                    (0..nc as u16)
                        .filter(|&c| m.contains(reps[c as usize]))
                        .collect()
                })
                .clone()
        };

        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); ns * nc];
        let mut succs: Vec<Vec<StateId>> = vec![Vec::new(); ns * nc];
        let mut preds: Vec<Vec<StateId>> = vec![Vec::new(); ns * nc];
        for q in 0..ns {
            for (i, (_, mask, r)) in evsa.transitions_from(q as StateId).iter().enumerate() {
                for c in classes_of_mask(mask) {
                    let key = q * nc + c as usize;
                    edges[key].push(i as u32);
                    succs[key].push(*r);
                    preds[*r as usize * nc + c as usize].push(q as StateId);
                }
            }
        }
        for v in succs.iter_mut().chain(preds.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        let (edge_off, edge_pool) = to_csr(edges);
        let (succ_off, succ_pool) = to_csr(succs);
        let (pred_off, pred_pool) = to_csr(preds);

        let mut finals = vec![0u64; words].into_boxed_slice();
        for q in 0..ns {
            if !evsa.final_blocks(q as StateId).is_empty() {
                finals[q >> 6] |= 1u64 << (q & 63);
            }
        }
        let mut start_set = vec![0u64; words].into_boxed_slice();
        if ns > 0 {
            let s = evsa.start() as usize;
            start_set[s >> 6] |= 1u64 << (s & 63);
        }
        let post = if ns > 0 {
            post_states(&evsa)
        } else {
            Vec::new()
        };

        DenseEvsa {
            evsa,
            config,
            engine_id: ENGINE_IDS.fetch_add(1, Ordering::Relaxed),
            classes,
            nc,
            ns,
            words,
            edge_off,
            edge_pool,
            succ_off,
            succ_pool,
            pred_off,
            pred_pool,
            finals,
            start_set,
            post,
            caches: Mutex::new(Vec::new()),
        }
    }

    /// The compiled automaton.
    pub fn evsa(&self) -> &EVsa {
        &self.evsa
    }

    /// The compiled automaton behind its shared handle.
    pub fn evsa_arc(&self) -> &Arc<EVsa> {
        &self.evsa
    }

    /// The byte-class partition the tables are indexed by.
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// The engine configuration.
    pub fn config(&self) -> DenseConfig {
        self.config
    }

    fn take_cache(&self) -> DenseCache {
        self.caches
            .lock()
            .expect("cache pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn return_cache(&self, cache: DenseCache) {
        self.caches.lock().expect("cache pool poisoned").push(cache);
    }

    /// Binds `cache` to this engine before a scan. A cache last used by
    /// a *different* `DenseEvsa` holds power sets and transition rows
    /// over that engine's state numbering and byte classes — reading
    /// them here would silently corrupt results (or index rows out of
    /// bounds when the class counts differ). An ownership change resets
    /// both lazy DFAs; the hit/miss/skip counters survive, as with
    /// overflow resets.
    fn adopt(&self, cache: &mut DenseCache) {
        if cache.owner != Some(self.engine_id) {
            cache.fwd.clear();
            cache.bwd.clear();
            cache.owner = Some(self.engine_id);
        }
    }

    /// Interns a power-set state, or `None` when the memory bound is hit.
    fn intern(&self, dfa: &mut LazyDfa, set: Box<[u64]>) -> Option<u32> {
        if let Some(&id) = dfa.ids.get(&set) {
            return Some(id);
        }
        if dfa.sets.len() >= self.config.max_cache_states {
            return None;
        }
        let id = dfa.sets.len() as u32;
        dfa.ids.insert(set.clone(), id);
        dfa.sets.push(set);
        dfa.rows.resize(dfa.rows.len() + self.nc, UNEXPLORED);
        Some(id)
    }

    /// One lazy-DFA step: successor of interned state `id` on byte class
    /// `c`, computed (and memoized) on first use. `backward` selects the
    /// predecessor adjacency (viability) over the successor adjacency
    /// (acceptance). `None` = cache bound hit.
    fn step(&self, dfa: &mut LazyDfa, id: u32, c: usize, backward: bool) -> Option<u32> {
        let cached = dfa.rows[id as usize * self.nc + c];
        if cached != UNEXPLORED {
            dfa.hits += 1;
            return Some(cached);
        }
        dfa.misses += 1;
        let (off, pool) = if backward {
            (&self.pred_off, &self.pred_pool)
        } else {
            (&self.succ_off, &self.succ_pool)
        };
        let mut out = vec![0u64; self.words].into_boxed_slice();
        for w in 0..self.words {
            let mut bits = dfa.sets[id as usize][w];
            while bits != 0 {
                let q = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = q * self.nc + c;
                for &t in &pool[off[base] as usize..off[base + 1] as usize] {
                    out[t as usize >> 6] |= 1u64 << (t & 63);
                }
            }
        }
        let nid = self.intern(dfa, out)?;
        dfa.rows[id as usize * self.nc + c] = nid;
        Some(nid)
    }

    /// The raw successor power-set of `set` on class `c`, computed into
    /// `out` without interning (so skip-loop probing can never trigger a
    /// cache-bound fallback that plain scanning would not have hit).
    fn successor_set(&self, set: &[u64], c: usize, backward: bool, out: &mut [u64]) {
        out.iter_mut().for_each(|w| *w = 0);
        let (off, pool) = if backward {
            (&self.pred_off, &self.pred_pool)
        } else {
            (&self.succ_off, &self.succ_pool)
        };
        for (w, &word) in set.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let q = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = q * self.nc + c;
                for &t in &pool[off[base] as usize..off[base + 1] as usize] {
                    out[t as usize >> 6] |= 1u64 << (t & 63);
                }
            }
        }
    }

    /// Skip-loop probe for interned state `id`: determines the byte
    /// classes on which the state steps to itself and — when the stay
    /// set covers most of the alphabet — compiles a SWAR finder for the
    /// *escape* bytes. Memoized per state in the cache; invalidated with
    /// the cache on overflow.
    fn escape_finder<'a>(
        &self,
        dfa: &'a mut LazyDfa,
        id: u32,
        backward: bool,
    ) -> Option<&'a ByteFinder> {
        if !dfa.loops.contains_key(&id) {
            let set = &dfa.sets[id as usize];
            let mut stay = ByteSet::EMPTY;
            let mut out = vec![0u64; self.words];
            for c in 0..self.nc {
                self.successor_set(set, c, backward, &mut out);
                if out[..] == set[..] {
                    for b in self.classes.bytes_of(c) {
                        stay.insert(b);
                    }
                }
            }
            // Skipping pays when escapes are rare; a state that escapes
            // on most bytes would bounce out of the scanner immediately,
            // so mark it not-worthwhile and never probe it again.
            let info = if stay.len() >= 192 {
                Some(ByteFinder::from_predicate(|b| !stay.contains(b)))
            } else {
                None
            };
            dfa.loops.insert(id, info);
        }
        dfa.loops.get(&id).expect("probed above").as_ref()
    }

    /// Runs the backward lazy DFA over `doc`, filling `cache.ids_buf`
    /// with the viability-set id per position. `None` = cache bound hit.
    ///
    /// With [`DenseConfig::skip_loop`] on, a detected self-loop is
    /// resolved by scanning *backwards* for the previous escape byte
    /// ([`ByteFinder::rfind`]) and bulk-filling the id buffer for the
    /// provably-unchanged positions in between.
    fn lazy_viability(&self, doc: &[u8], cache: &mut DenseCache) -> Option<()> {
        let n = doc.len();
        let fid = self.intern(&mut cache.bwd, self.finals.clone())?;
        cache.ids_buf.clear();
        cache.ids_buf.resize(n + 1, 0);
        cache.ids_buf[n] = fid;
        let mut cur = fid;
        // `i` = number of unconsumed document bytes; byte `doc[i-1]` is
        // processed next (the pass runs right to left).
        let mut i = n;
        let mut streak = 0u32;
        while i > 0 {
            let c = self.classes.class_of(doc[i - 1]);
            let next = self.step(&mut cache.bwd, cur, c, true)?;
            cache.ids_buf[i - 1] = next;
            i -= 1;
            streak = if next == cur { streak + 1 } else { 0 };
            if self.config.skip_loop && streak >= SKIP_STREAK && i > 0 {
                streak = 0;
                let jump = self
                    .escape_finder(&mut cache.bwd, cur, true)
                    .map(|f| f.rfind(&doc[..i]));
                match jump {
                    // Bytes after the last escape all stay in the loop.
                    Some(Some(j)) => {
                        cache.ids_buf[j + 1..i].fill(cur);
                        cache.skipped += (i - (j + 1)) as u64;
                        i = j + 1;
                    }
                    // No escape byte left: the rest of the pass is flat.
                    Some(None) => {
                        cache.ids_buf[..i].fill(cur);
                        cache.skipped += i as u64;
                        i = 0;
                    }
                    None => {}
                }
            }
            cur = next;
        }
        Some(())
    }

    /// Evaluates on a document, producing exactly the relation of
    /// [`eval::eval_evsa`]. Uses a pooled [`DenseCache`].
    pub fn eval(&self, doc: &[u8]) -> SpanRelation {
        let mut cache = self.take_cache();
        let out = self.eval_with(doc, &mut cache);
        self.return_cache(cache);
        out
    }

    /// Evaluates on a document with an explicit scan cache (one per
    /// worker; reuse amortizes lazy determinization across documents).
    pub fn eval_with(&self, doc: &[u8], cache: &mut DenseCache) -> SpanRelation {
        if self.ns == 0 {
            return SpanRelation::empty();
        }
        self.adopt(cache);
        if self.lazy_viability(doc, cache).is_none() {
            // Cache bound hit: exact fallback via the materialized
            // bitset viability table. Drop the overflowed cache state so
            // later (smaller) scans start fresh.
            cache.bwd.clear();
            let viable = eval::viability(&self.evsa, doc);
            return forward_enumerate_scratch(
                &self.evsa,
                doc,
                &self.post,
                &viable,
                &DenseEdges(self),
                &mut cache.scratch,
            );
        }
        let viable = LazyViable {
            ids: &cache.ids_buf,
            sets: &cache.bwd.sets,
        };
        forward_enumerate_scratch(
            &self.evsa,
            doc,
            &self.post,
            &viable,
            &DenseEdges(self),
            &mut cache.scratch,
        )
    }

    /// Boolean acceptance (at least one output tuple), equal to
    /// [`eval::accepts_evsa`]. Uses a pooled [`DenseCache`].
    pub fn accepts(&self, doc: &[u8]) -> bool {
        let mut cache = self.take_cache();
        let out = self.accepts_with(doc, &mut cache);
        self.return_cache(cache);
        out
    }

    /// Boolean acceptance with an explicit scan cache. With
    /// [`DenseConfig::skip_loop`] on, a detected forward self-loop jumps
    /// via [`ByteFinder::find`] to the next escape byte.
    pub fn accepts_with(&self, doc: &[u8], cache: &mut DenseCache) -> bool {
        if self.ns == 0 {
            return false;
        }
        self.adopt(cache);
        let Some(mut cur) = self.intern(&mut cache.fwd, self.start_set.clone()) else {
            cache.fwd.clear();
            return eval::accepts_evsa(&self.evsa, doc);
        };
        let n = doc.len();
        let mut pos = 0;
        let mut streak = 0u32;
        while pos < n {
            let c = self.classes.class_of(doc[pos]);
            match self.step(&mut cache.fwd, cur, c, false) {
                Some(id) => {
                    streak = if id == cur { streak + 1 } else { 0 };
                    cur = id;
                    pos += 1;
                    if cache.fwd.sets[cur as usize].iter().all(|&w| w == 0) {
                        return false;
                    }
                    if self.config.skip_loop && streak >= SKIP_STREAK && pos < n {
                        streak = 0;
                        let jump = self
                            .escape_finder(&mut cache.fwd, cur, false)
                            .map(|f| f.find(&doc[pos..]));
                        match jump {
                            Some(Some(j)) => {
                                cache.skipped += j as u64;
                                pos += j;
                            }
                            Some(None) => {
                                cache.skipped += (n - pos) as u64;
                                pos = n;
                            }
                            None => {}
                        }
                    }
                }
                None => {
                    // Cache bound hit: exact NFA fallback.
                    cache.fwd.clear();
                    return eval::accepts_evsa(&self.evsa, doc);
                }
            }
        }
        cache.fwd.sets[cur as usize]
            .iter()
            .zip(self.finals.iter())
            .any(|(a, f)| a & f != 0)
    }
}

/// Viability view backed by the backward lazy DFA's interned sets.
struct LazyViable<'a> {
    ids: &'a [u32],
    sets: &'a [Box<[u64]>],
}

impl ViableSource for LazyViable<'_> {
    #[inline]
    fn viable(&self, pos: usize, q: StateId) -> bool {
        let q = q as usize;
        self.sets[self.ids[pos] as usize][q >> 6] & (1u64 << (q & 63)) != 0
    }
}

/// Edge source backed by the precompiled per-(state, class) lists.
/// Shared with the AOT engine, whose forward enumeration runs over the
/// same dense edge tables.
pub(crate) struct DenseEdges<'a>(pub(crate) &'a DenseEvsa);

impl EdgeSource for DenseEdges<'_> {
    #[inline]
    fn candidates(&self, q: StateId, b: u8) -> EdgeCandidates<'_> {
        let d = self.0;
        let base = q as usize * d.nc + d.classes.class_of(b);
        EdgeCandidates::List(&d.edge_pool[d.edge_off[base] as usize..d.edge_off[base + 1] as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{accepts_evsa, eval_evsa};
    use crate::rgx::Rgx;
    use crate::span::Span;
    use crate::vars::VarId;

    fn compile(pattern: &str) -> Arc<EVsa> {
        let vsa = Rgx::parse(pattern).unwrap().to_vsa().unwrap();
        Arc::new(EVsa::from_functional(&vsa.functionalize()))
    }

    fn dense(pattern: &str) -> DenseEvsa {
        DenseEvsa::compile(compile(pattern), DenseConfig::default())
    }

    #[test]
    fn eval_matches_nfa_engine() {
        for (pat, docs) in [
            (
                ".*x{a+}.*",
                vec![b"aabaa".to_vec(), b"".to_vec(), b"bbb".to_vec()],
            ),
            (
                "x{a*}y{b*}",
                vec![b"aabb".to_vec(), b"ab".to_vec(), b"ba".to_vec()],
            ),
            ("(a|b)*x{ab}(a|b)*", vec![b"abab".to_vec()]),
            (".*x{}.*", vec![b"ab".to_vec()]),
            ("x{[^.]+}(\\..*)?", vec![b"ab.cd".to_vec()]),
        ] {
            let e = compile(pat);
            let d = DenseEvsa::compile(e.clone(), DenseConfig::default());
            for doc in docs {
                assert_eq!(d.eval(&doc), eval_evsa(&e, &doc), "pattern {pat}");
            }
        }
    }

    #[test]
    fn accepts_matches_nfa_engine() {
        let e = compile("a+b");
        let d = DenseEvsa::compile(e.clone(), DenseConfig::default());
        for doc in [b"aab".as_slice(), b"ab c", b"", b"b", b"aaab"] {
            assert_eq!(d.accepts(doc), accepts_evsa(&e, doc));
        }
    }

    #[test]
    fn cache_overflow_falls_back_to_nfa() {
        // A bound of 1 cannot even hold the second power-set state, so
        // every scan takes the fallback path — results must not change.
        let e = compile(".*x{a+}.*");
        let tiny = DenseEvsa::compile(
            e.clone(),
            DenseConfig {
                max_cache_states: 1,
                ..DenseConfig::default()
            },
        );
        let doc = b"aa b aa";
        assert_eq!(tiny.eval(doc), eval_evsa(&e, doc));
        assert_eq!(tiny.accepts(doc), accepts_evsa(&e, doc));
        assert_eq!(tiny.eval(b""), eval_evsa(&e, b""));
    }

    #[test]
    fn skip_loop_is_exact_and_skips() {
        // A needle in a long flat haystack: the backward viability pass
        // must jump the context via the scanner, with identical results.
        let e = compile(".*x{q+}.*");
        let plain = DenseEvsa::compile(e.clone(), DenseConfig::default());
        let skipping = DenseEvsa::compile(
            e.clone(),
            DenseConfig {
                skip_loop: true,
                ..DenseConfig::default()
            },
        );
        let mut doc = vec![b'a'; 2048];
        doc[777] = b'q';
        let mut cache = DenseCache::default();
        assert_eq!(
            skipping.eval_with(&doc, &mut cache),
            plain.eval(&doc),
            "skip-loop must not change results"
        );
        assert!(
            cache.skipped_bytes() > 1000,
            "expected a large jump, got {}",
            cache.skipped_bytes()
        );
        let skipped_after_eval = cache.skipped_bytes();
        assert_eq!(skipping.accepts_with(&doc, &mut cache), plain.accepts(&doc));
        assert!(cache.skipped_bytes() > skipped_after_eval);
        // Matchless documents and tiny documents behave identically too.
        for doc in [vec![b'a'; 100], vec![], vec![b'q']] {
            assert_eq!(skipping.eval_with(&doc, &mut cache), plain.eval(&doc));
            assert_eq!(skipping.accepts_with(&doc, &mut cache), plain.accepts(&doc));
        }
    }

    #[test]
    fn cache_is_reused_across_documents() {
        let d = dense(".*x{a+}.*");
        let mut cache = DenseCache::default();
        let r1 = d.eval_with(b"aa b", &mut cache);
        let interned_after_first = cache.bwd.sets.len();
        let r2 = d.eval_with(b"aa b", &mut cache);
        assert_eq!(r1, r2);
        // Second scan of the same document interns nothing new.
        assert_eq!(cache.bwd.sets.len(), interned_after_first);
        assert!(interned_after_first > 0);
    }

    #[test]
    fn long_document_dense() {
        let doc = vec![b'a'; 1 << 18];
        let d = dense("a*x{b*}a*");
        let rel = d.eval(&doc);
        assert_eq!(rel.len(), doc.len() + 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(0, 0));
    }

    /// `x{[\x80-\xFF]+}`-shaped spanner built directly over the high
    /// half of the byte alphabet (the regex layer is ASCII-only).
    fn hi_range_evsa() -> Arc<EVsa> {
        let mut v = crate::vsa::Vsa::new(crate::vars::VarTable::new(["x"]).unwrap());
        let q1 = v.add_state();
        let q2 = v.add_state();
        let hi = ByteSet::range(0x80, 0xFF);
        v.add_transition(
            0,
            crate::vsa::Label::Op(crate::vars::VarOp::Open(VarId(0))),
            q1,
        );
        v.add_transition(q1, crate::vsa::Label::Bytes(hi), q1);
        v.add_transition(
            q1,
            crate::vsa::Label::Op(crate::vars::VarOp::Close(VarId(0))),
            q2,
        );
        v.set_final(q2, true);
        Arc::new(EVsa::from_functional(&v.functionalize()))
    }

    #[test]
    fn non_ascii_classes() {
        let e = hi_range_evsa();
        let d = DenseEvsa::compile(e.clone(), DenseConfig::default());
        for doc in [vec![0x80, 0xC3, 0xFF], vec![0x80, 0x20], vec![0x00], vec![]] {
            assert_eq!(d.eval(&doc), eval_evsa(&e, &doc));
        }
    }

    #[test]
    fn shared_classes_compile_matches_own_partition() {
        // A strictly finer partition than the automaton's own still
        // refines every mask, so results must be identical.
        let e = compile(".*x{a+}.*");
        let own = DenseEvsa::compile(e.clone(), DenseConfig::default());
        let mut builder = ByteClassBuilder::new();
        for m in e.byte_masks() {
            builder.add_set(|b| m.contains(b));
        }
        builder
            .add_set(|b: u8| b.is_ascii_digit())
            .add_set(|b| b == b'q');
        let shared =
            DenseEvsa::compile_with_classes(e.clone(), DenseConfig::default(), builder.build());
        assert!(shared.classes().num_classes() > own.classes().num_classes());
        for doc in [b"aabaa".as_slice(), b"", b"q9a", b"bbb"] {
            assert_eq!(shared.eval(doc), own.eval(doc));
            assert_eq!(shared.accepts(doc), own.accepts(doc));
        }
    }

    #[test]
    #[should_panic(expected = "does not refine")]
    fn non_refining_partition_is_rejected() {
        // `x{a}` distinguishes 'a' from everything else; the singleton
        // partition straddles that boundary.
        DenseEvsa::compile_with_classes(
            compile("x{a}"),
            DenseConfig::default(),
            ByteClasses::singleton(),
        );
    }

    #[test]
    fn cache_ownership_resets_across_engines() {
        // One cache shuttled between a narrow-alphabet engine and a
        // wide high-byte engine: different state numberings AND
        // different class counts. Without the ownership check the
        // second engine reads the first engine's interned power sets
        // (silent corruption, or out-of-bounds rows); with it, every
        // hand-off resets the lazy DFAs and results stay exact.
        let narrow_e = compile(".*x{a+b}.*");
        let narrow = DenseEvsa::compile(narrow_e.clone(), DenseConfig::default());
        let wide_e = hi_range_evsa();
        let wide = DenseEvsa::compile(wide_e.clone(), DenseConfig::default());
        assert_ne!(narrow.classes().num_classes(), wide.classes().num_classes());
        let mut cache = DenseCache::default();
        let doc_n = b"aabaa";
        let doc_w = vec![0x80u8, 0xFF, 0x81];
        for _ in 0..3 {
            assert_eq!(
                narrow.eval_with(doc_n, &mut cache),
                eval_evsa(&narrow_e, doc_n)
            );
            assert_eq!(
                wide.eval_with(&doc_w, &mut cache),
                eval_evsa(&wide_e, &doc_w)
            );
            assert!(narrow.accepts_with(doc_n, &mut cache));
            assert!(wide.accepts_with(&doc_w, &mut cache));
        }
        // Same-engine reuse still never resets: interned states persist.
        let before = cache.stats();
        let _ = wide.eval_with(&doc_w, &mut cache);
        assert!(cache.stats().hits > before.hits);
    }

    #[test]
    fn empty_automaton() {
        let v = crate::vsa::Vsa::new(crate::vars::VarTable::empty());
        let e = Arc::new(EVsa::from_functional(&v));
        let d = DenseEvsa::compile(e, DenseConfig::default());
        assert!(d.eval(b"abc").is_empty());
        assert!(!d.accepts(b"abc"));
    }
}
