//! Execution of annotated split plans (paper §7.3): chunks are routed to
//! a per-key split-spanner, the operational counterpart of the
//! key–spanner mappings certified by `splitc_core::annotated`.

use crate::engine::ExecSpanner;
use splitc_spanner::span::Span;
use splitc_spanner::tuple::{SpanRelation, SpanTuple};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A keyed splitting function: documents to `(key, span)` pairs.
pub type AnnotatedSplitFn = Arc<dyn Fn(&[u8]) -> Vec<(String, Span)> + Send + Sync>;

/// An executable annotated plan: one compiled spanner per key.
pub struct AnnotatedPlan {
    split: AnnotatedSplitFn,
    spanners: BTreeMap<String, ExecSpanner>,
}

impl AnnotatedPlan {
    /// Builds a plan; every key the splitter may emit must be bound.
    pub fn new(
        split: AnnotatedSplitFn,
        spanners: impl IntoIterator<Item = (String, ExecSpanner)>,
    ) -> AnnotatedPlan {
        AnnotatedPlan {
            split,
            spanners: spanners.into_iter().collect(),
        }
    }

    /// Evaluates `P_S ∘ S_K`: every chunk is evaluated by the spanner of
    /// its key; results are shifted and unioned. Chunks with unbound
    /// keys are an error (the certification pipeline prevents them).
    pub fn eval(&self, doc: &[u8]) -> Result<SpanRelation, String> {
        let mut tuples: Vec<SpanTuple> = Vec::new();
        for (key, sp) in (self.split)(doc) {
            let spanner = self
                .spanners
                .get(&key)
                .ok_or_else(|| format!("no spanner bound for key {key}"))?;
            for t in spanner.eval(sp.slice(doc)).iter() {
                tuples.push(t.shift(sp));
            }
        }
        Ok(SpanRelation::from_tuples(tuples))
    }

    /// The bound keys.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.spanners.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter::native;

    /// Key HTTP-like messages by their first word.
    fn method_split(doc: &[u8]) -> Vec<(String, Span)> {
        native::paragraphs(doc)
            .into_iter()
            .map(|sp| {
                let text = sp.slice(doc);
                let key = if text.starts_with(b"get") {
                    "get"
                } else {
                    "post"
                };
                (key.to_string(), sp)
            })
            .collect()
    }

    fn spanner(pat: &str) -> ExecSpanner {
        ExecSpanner::compile(&Rgx::parse(pat).unwrap().to_vsa().unwrap())
    }

    #[test]
    fn routes_by_key() {
        let plan = AnnotatedPlan::new(
            Arc::new(method_split),
            [
                ("get".to_string(), spanner("get y{[a-z]+}(\\n.*|)")),
                (
                    "post".to_string(),
                    spanner("post [a-z]+\\nhost y{[a-z]+}(\\n.*|)"),
                ),
            ],
        );
        let log = b"get alpha\nhost h\n\npost beta\nhost i";
        let rel = plan.eval(log).unwrap();
        assert_eq!(rel.len(), 2);
        let texts: Vec<&[u8]> = rel.iter().map(|t| t.spans()[0].slice(log)).collect();
        assert_eq!(texts, vec![b"alpha".as_slice(), b"i".as_slice()]);
        assert_eq!(plan.keys().count(), 2);
    }

    #[test]
    fn unbound_key_is_reported() {
        let plan = AnnotatedPlan::new(
            Arc::new(method_split),
            [("get".to_string(), spanner("get y{[a-z]+}(\\n.*|)"))],
        );
        assert!(plan.eval(b"post x\n").is_err());
        assert!(plan.eval(b"get x\n").is_ok());
    }

    #[test]
    fn agrees_with_formal_annotated_composition() {
        // The operational plan equals the Lemma E.2 composition spanner.
        use splitc_core::annotated::{annotated_compose, AnnotatedSplitter, KeySpannerMapping};
        use splitc_spanner::Splitter;
        let get_s = Splitter::parse("(.*\\n\\n|)x{get [a-z]+(\\n[a-z ]+)*}(\\n\\n.*|)").unwrap();
        let post_s = Splitter::parse("(.*\\n\\n|)x{post [a-z]+(\\n[a-z ]+)*}(\\n\\n.*|)").unwrap();
        let sk = AnnotatedSplitter::new([("get".to_string(), get_s), ("post".to_string(), post_s)])
            .unwrap();
        let get_p = Rgx::parse("get y{[a-z]+}(\\n.*|)")
            .unwrap()
            .to_vsa()
            .unwrap();
        let post_p = Rgx::parse("post [a-z]+\\nhost y{[a-z]+}(\\n.*|)")
            .unwrap()
            .to_vsa()
            .unwrap();
        let mapping = KeySpannerMapping::new([
            ("get".to_string(), get_p.clone()),
            ("post".to_string(), post_p.clone()),
        ])
        .unwrap();
        let formal = annotated_compose(&mapping, &sk).unwrap();

        let plan = AnnotatedPlan::new(
            Arc::new(method_split),
            [
                ("get".to_string(), ExecSpanner::compile(&get_p)),
                ("post".to_string(), ExecSpanner::compile(&post_p)),
            ],
        );
        let log = b"get alpha\nhost h\n\npost beta\nhost i";
        assert_eq!(
            plan.eval(log).unwrap(),
            splitc_spanner::eval::eval(&formal, log)
        );
    }
}
