#!/usr/bin/env sh
# End-to-end smoke test for the extraction service: boots
# `splitc-server` on an ephemeral loopback port, drives a full
# register -> certify -> extract -> stats round-trip over real HTTP
# (python3 stdlib http.client — no extra dependencies), compares the
# extraction relations byte-for-byte against `splitc-server --offline`
# (the no-server differential reference), and finally delivers SIGTERM
# and asserts a graceful exit 0 with "shutdown complete" on stdout.
#
# Usage: scripts/server_smoke.sh [server-binary]
#        (default: ./target/release/splitc-server)
set -eu

bin="${1:-./target/release/splitc-server}"
test -x "$bin" || { echo "server binary $bin not found (build with: cargo build --release -p splitc-server)" >&2; exit 1; }

log="$(mktemp)"
trap 'rm -f "$log"; kill "$pid" 2>/dev/null || true' EXIT

"$bin" --port 0 --workers 4 >"$log" 2>&1 &
pid=$!

# Wait for the bound-address line (the server prints and flushes it
# once the listener is up).
addr=""
i=0
while [ "$i" -lt 100 ]; do
  addr="$(sed -n 's/^listening on //p' "$log")"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died during startup:" >&2; cat "$log" >&2; exit 1; }
  sleep 0.1
  i=$((i + 1))
done
test -n "$addr" || { echo "server never printed its address:" >&2; cat "$log" >&2; exit 1; }
echo "== server up at $addr (pid $pid)" >&2

python3 - "$addr" "$bin" <<'PY'
import http.client
import json
import subprocess
import sys

addr, bin_path = sys.argv[1], sys.argv[2]
host, port = addr.rsplit(":", 1)
conn = http.client.HTTPConnection(host, int(port), timeout=60)


def call(method, path, obj=None, expect=200):
    body = None if obj is None else json.dumps(obj)
    conn.request(method, path, body=body)
    resp = conn.getresponse()
    data = resp.read()
    if resp.status != expect:
        sys.exit(f"{method} {path}: expected {expect}, got {resp.status}: {data!r}")
    return data


PATTERN = ".*x{a+}.*"
DOCS = [
    "Alpha aaa bravo. Charlie aa delta.",
    "Echo a foxtrot! Golf aaaa hotel? No runs here.",
]

# Register + certify (cold, then cached).
spanner = json.loads(call("POST", "/spanners", {"pattern": PATTERN}))
splitter = json.loads(call("POST", "/splitters", {"builtin": "sentences"}))
pair = {"spanner": spanner["id"], "splitter": splitter["id"]}
cert = json.loads(call("POST", "/certify", pair))
assert cert["holds"] is True, f"pair must be self-split-correct: {cert}"
assert cert["cached"] is False, f"first certification must run: {cert}"
cert2 = json.loads(call("POST", "/certify", pair))
assert cert2["cached"] is True, f"second certification must hit the cache: {cert2}"

# Extract through the server, then offline; the relations payloads
# must be byte-identical (both sides share one JSON encoder). Wire
# responses lead with the protocol version; the offline reference is
# not a wire response and carries none.
prefix = '{"v":1,"relations":'
offline_prefix = '{"relations":'


def extract_relations(req):
    body = call("POST", "/extract", req).decode()
    assert body.startswith(prefix), f"unexpected extract shape: {body[:80]}"
    return body[len(prefix):body.index(',"stats":')]


def extract_stats(req):
    return json.loads(call("POST", "/extract", req))["stats"]


def offline_relations(docs):
    offline_req = json.dumps(
        {"pattern": PATTERN, "splitter_builtin": "sentences", "docs": docs})
    offline = subprocess.run(
        [bin_path, "--offline"], input=offline_req, capture_output=True,
        text=True, check=True).stdout.strip()
    assert offline.startswith(offline_prefix) and offline.endswith("}"), \
        f"unexpected offline shape: {offline[:80]}"
    return offline[len(offline_prefix):-1]


server_rel = extract_relations({**pair, "docs": DOCS})
offline_rel = offline_relations(DOCS)
assert server_rel == offline_rel, (
    "server and offline relations differ:\n"
    f"  server : {server_rel}\n  offline: {offline_rel}")
assert server_rel != "[]", "smoke corpus must produce tuples"

# Unknown fields are rejected with a typed 400 naming the key.
err = call("POST", "/extract", {**pair, "docs": DOCS, "dcos": []},
           expect=400).decode()
assert '"v":1' in err and "dcos" in err, f"unknown-field 400 names the key: {err}"

# Corpus resources: PUT shards, extract by id (fills the segment
# cache and the handle's per-shard memo), apply a point-edit delta,
# and prove the delta-maintained extraction answers byte-identically
# to offline full re-extraction of the edited corpus — with only the
# edited shard re-run and, inside it, only the edited segment
# re-evaluated.
call("PUT", "/corpus/smoke", {"splitter": splitter["id"], "shards": DOCS})
by_corpus = {"spanner": spanner["id"], "corpus": "smoke"}
stats0 = extract_stats(by_corpus)
assert stats0["docs_reused"] == 0, f"cold extract runs every shard: {stats0}"
stats0 = stats0["segment_cache"]
assert stats0["misses"] > 0 and stats0["hits"] == 0, \
    f"cold corpus extract misses every segment: {stats0}"
cold_misses = stats0["misses"]

# "Charlie aa delta." -> "Charlie aaa delta." (one segment touched).
edited = DOCS[0].replace("Charlie aa ", "Charlie aaa ")
start = DOCS[0].index("aa delta")
delta = json.loads(call("POST", "/corpus/smoke/delta", {
    "op": "edit", "shard": 0, "start": start, "end": start + 2,
    "text": "aaa"}))
assert delta["delta"]["segments_resplit"] >= 1, f"delta resplits: {delta}"

server_rel = extract_relations(by_corpus)
assert server_rel == offline_relations([edited, DOCS[1]]), \
    "delta-maintained extraction must equal offline full re-extraction"
stats1 = extract_stats(by_corpus)
assert stats1["docs_reused"] == len(DOCS), \
    f"an unchanged corpus re-extraction is answered from the memo: {stats1}"
stats1 = stats1["segment_cache"]
assert stats1["misses"] == cold_misses + 1, \
    f"a one-segment edit re-evaluates exactly one segment: {stats1}"
assert stats1["hits"] >= 1, \
    f"untouched segments of the edited shard are cache hits: {stats1}"

call("DELETE", "/corpus/smoke")
call("POST", "/extract", by_corpus, expect=404)

# Stats reflect the session: one certification miss (the corpus
# extractions certify the same pair — cache hits), exactly the two
# deliberate 4xx probes above, and six /extract requests (inline docs,
# the unknown-field 400, three corpus runs, the post-delete 404).
stats = json.loads(call("GET", "/stats"))
assert stats["v"] == 1, f"stats responses carry the protocol version: {stats}"
cc = stats["registry"]["cert_cache"]
assert cc["misses"] == 1, f"exactly one cold certification expected: {cc}"
assert cc["hits"] >= 2, f"re-certify + checked extract must hit: {cc}"
assert stats["registry"]["corpora"] == 0, \
    f"the smoke corpus was deleted: {stats['registry']}"
assert stats["responses"]["client_4xx"] == 2 \
    and stats["responses"]["server_5xx"] == 0, \
    f"only the two deliberate 4xx probes expected: {stats['responses']}"
assert stats["latency"]["extract"]["count"] == 6, \
    f"six extracts recorded: {stats['latency']['extract']}"
assert stats["latency"]["corpus"]["count"] == 3, \
    f"PUT + delta + DELETE recorded: {stats['latency']['corpus']}"
assert stats["segment_cache"]["hits"] > 0 \
    and stats["segment_cache"]["evictions"] == 0, \
    f"segment cache served the corpus re-extractions: {stats['segment_cache']}"
assert stats["pool"]["workers"] == 4

print("== round-trip OK: relations byte-identical to offline reference,"
      f" {len(json.loads(server_rel))} docs extracted")
PY

# Graceful shutdown: SIGTERM -> in-flight work completes, exit 0.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
test "$status" -eq 0 || { echo "server exited $status after SIGTERM:" >&2; cat "$log" >&2; exit 1; }
grep -q "shutdown complete" "$log" || { echo "no graceful-shutdown marker:" >&2; cat "$log" >&2; exit 1; }
trap 'rm -f "$log"' EXIT
echo "== graceful shutdown OK (exit 0)" >&2
echo "server smoke: all checks passed" >&2
