#!/usr/bin/env python3
"""Sanity-checks a BENCH JSON-lines file produced by bench_smoke.sh.

Verifies the stable row schema (including the `scale` problem-size
field) and applies named performance gates:

  dense        nfa/dense wall ratio on the best e-series bench (always
               applied; defaults to 1.5x when no gate is given)
  stream       batch/stream ratio on `e5_corpus_stream` (per engine)
  cert         determinize/antichain ratio on the
               `t3_certification_scaling/needle` family, judged at the
               largest `scale` point (the family whose determinization
               grows as 2^k; small points are overhead-dominated by
               design, the gate is the asymptotic one)
  prefilter    dense/prefilter ratio on `e6_sparse_prefilter`
  fleet        sequential/fused ratio on `e7_fleet/sparse`, judged at
               the `scale` 50 point by default (override with the gate's
               scale component)
  server-cert  cold/warm ratio on `e8_server/registration`, judged at
               the largest fleet `scale`
  throughput   requests/second floor on `e8_server/throughput`
               (`scale` carries the request count of the burst)
  aot          dense/aot wall ratio on the `e9_aot/*` workload replays,
               judged at the largest `scale` point per workload; the
               gate holds when at least two workloads meet the ratio
               (the AOT tier must beat lazy dense on at least two of
               the e1-e4 hot loops, not on every shape)
  incremental  full/incremental wall ratio on the `t8_incremental`
               edit workload (`scale` carries the maintained segment
               count), judged at the largest `scale` point per engine
               (pin with the gate's scale component); every engine
               present must meet the ratio

Scaling gates key on each row's `scale` field, not on bench-name
suffixes or row positions.

Usage (named gates):
    scripts/bench_check.py BENCH_pr.json --gate dense:1.2 \
        --gate fleet:1.5:50 --gate aot:1.2

Each gate is `name:ratio` or `name:ratio:scale`; `--gate=...` also
works. The scale component pins the judged `scale` point where the gate
supports one (fleet; cert/server-cert/aot otherwise judge the largest
point present).

Back-compat: the historical positional form is still accepted and maps
onto named gates in the legacy order:

    scripts/bench_check.py BENCH_pr.json [dense] [stream] [cert] \
        [prefilter] [fleet] [server-cert] [throughput]

Importable: `run(argv)` takes a full argv (program name included) and
returns the process exit code; `scripts/test_bench_check.py` drives it
directly.
"""
import json
import sys

REQUIRED = {
    "bench": str,
    "engine": str,
    "bytes": int,
    "scale": (int, float),
    "wall_ms": (int, float),
    "tuples": int,
}

# Positional argument order of the pre-named-gate CLI, kept as a shim.
LEGACY_ORDER = [
    "dense", "stream", "cert", "prefilter", "fleet", "server-cert",
    "throughput",
]

GATE_NAMES = set(LEGACY_ORDER) | {"aot", "incremental"}


def load_rows(path):
    """Parses and schema-checks the JSON-lines file. Returns (rows,
    error-message-or-None)."""
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            for key, ty in REQUIRED.items():
                if key not in row or not isinstance(row[key], ty):
                    return [], f"schema violation in row {row!r}: field {key}"
            rows.append(row)
    if not rows:
        return [], f"{path} is empty"
    return rows, None


def parse_args(argv):
    """Parses argv into (path, gates, error-message-or-None) where
    `gates` maps gate name -> (ratio, scale-or-None)."""
    path = None
    gates = {}
    positionals = []
    args = list(argv[1:])
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--gate":
            if i + 1 >= len(args):
                return None, None, "--gate needs a name:ratio[:scale] value"
            spec = args[i + 1]
            i += 2
        elif arg.startswith("--gate="):
            spec = arg[len("--gate="):]
            i += 1
        elif arg.startswith("--"):
            return None, None, f"unknown flag {arg!r}"
        else:
            if path is None:
                path = arg
            else:
                positionals.append(arg)
            i += 1
            continue
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            return None, None, (
                f"malformed gate {spec!r} (expected name:ratio[:scale])")
        name = parts[0]
        if name not in GATE_NAMES:
            names = ", ".join(sorted(GATE_NAMES))
            return None, None, f"unknown gate {name!r} (expected one of {names})"
        try:
            ratio = float(parts[1])
            scale = float(parts[2]) if len(parts) == 3 else None
        except ValueError:
            return None, None, f"non-numeric ratio/scale in gate {spec!r}"
        gates[name] = (ratio, scale)
    if path is None:
        path = "BENCH_pr.json"
    if positionals and gates:
        return None, None, "mix of positional gates and --gate flags"
    if positionals:
        if len(positionals) > len(LEGACY_ORDER):
            return None, None, (
                f"too many positional gates ({len(positionals)}; "
                f"at most {len(LEGACY_ORDER)})")
        for name, value in zip(LEGACY_ORDER, positionals):
            try:
                gates[name] = (float(value), None)
            except ValueError:
                return None, None, f"non-numeric positional gate {value!r}"
    return path, gates, None


def gate_ratio(gates, name, default=0.0):
    return gates[name][0] if name in gates else default


def gate_scale(gates, name):
    return gates[name][1] if name in gates else None


def run(argv) -> int:
    path, gates, err = parse_args(argv)
    if err:
        print(err)
        return 2

    min_speedup = gate_ratio(gates, "dense", 1.5)
    min_stream_ratio = gate_ratio(gates, "stream")
    min_cert_speedup = gate_ratio(gates, "cert")
    min_prefilter_speedup = gate_ratio(gates, "prefilter")
    min_fleet_speedup = gate_ratio(gates, "fleet")
    min_server_cert_speedup = gate_ratio(gates, "server-cert")
    min_req_per_s = gate_ratio(gates, "throughput")
    min_aot_speedup = gate_ratio(gates, "aot")
    min_incremental_speedup = gate_ratio(gates, "incremental")

    rows, err = load_rows(path)
    if err:
        print(err)
        return 1

    by_bench = {}
    for row in rows:
        by_bench.setdefault(row["bench"], {})[row["engine"]] = row["wall_ms"]
    best = 0.0
    best_bench = None
    for bench, engines in sorted(by_bench.items()):
        if not bench.startswith("e") or "nfa" not in engines or "dense" not in engines:
            continue
        speedup = engines["nfa"] / max(engines["dense"], 1e-9)
        print(f"{bench}: nfa {engines['nfa']:.2f} ms, dense {engines['dense']:.2f} ms "
              f"-> {speedup:.2f}x")
        if speedup > best:
            best, best_bench = speedup, bench
    if best_bench is None:
        print("no e-series benchmark has both engines")
        return 1
    if best < min_speedup:
        print(f"best dense speedup {best:.2f}x on {best_bench} "
              f"is below the required {min_speedup:.2f}x")
        return 1

    # Streaming-vs-batch corpus execution (per engine, when present).
    stream = {r["engine"]: r["wall_ms"] for r in rows
              if r["bench"] == "e5_corpus_stream/stream"}
    batch = {r["engine"]: r["wall_ms"] for r in rows
             if r["bench"] == "e5_corpus_stream/batch"}
    for engine in sorted(set(stream) & set(batch)):
        ratio = batch[engine] / max(stream[engine], 1e-9)
        print(f"e5_corpus_stream ({engine}): batch {batch[engine]:.2f} ms, "
              f"stream {stream[engine]:.2f} ms -> {ratio:.2f}x")
        if ratio < min_stream_ratio:
            print(f"streaming ratio {ratio:.2f}x ({engine}) is below the "
                  f"required {min_stream_ratio:.2f}x")
            return 1

    # Certification engine: antichain vs determinize-first on the gated
    # needle family, judged at the largest `scale` point present.
    cert = {}
    for row in rows:
        if row["bench"].startswith("t3_certification_scaling/needle"):
            cert.setdefault(row["scale"], {})[row["engine"]] = row["wall_ms"]
    gated = [k for k, engines in cert.items()
             if "antichain" in engines and "determinize" in engines]
    if gated:
        k = max(gated)
        anti = cert[k]["antichain"]
        det = cert[k]["determinize"]
        speedup = det / max(anti, 1e-9)
        print(f"t3_certification_scaling (needle scale={k:g}): determinize "
              f"{det:.2f} ms, antichain {anti:.2f} ms -> {speedup:.2f}x")
        if speedup < min_cert_speedup:
            print(f"antichain certification speedup {speedup:.2f}x at needle "
                  f"scale={k:g} is below the required {min_cert_speedup:.2f}x")
            return 1
    elif min_cert_speedup > 0.0:
        print("certification gate requested but no needle rows with both engines")
        return 1

    # Prefiltered engine vs dense on the sparse collection workload
    # (the `e6_sparse_prefilter` rows without a /variant suffix; the
    # /stream rows are pipeline-dominated and reported, not gated).
    sparse = by_bench.get("e6_sparse_prefilter", {})
    if "dense" in sparse and "prefilter" in sparse:
        speedup = sparse["dense"] / max(sparse["prefilter"], 1e-9)
        print(f"e6_sparse_prefilter: dense {sparse['dense']:.2f} ms, "
              f"prefilter {sparse['prefilter']:.2f} ms -> {speedup:.2f}x")
        if speedup < min_prefilter_speedup:
            print(f"prefilter speedup {speedup:.2f}x is below the required "
                  f"{min_prefilter_speedup:.2f}x")
            return 1
    elif min_prefilter_speedup > 0.0:
        print("prefilter gate requested but no e6 rows with both engines")
        return 1

    # Fused fleet vs sequential per-spanner passes, judged at the
    # 50-member sparse point by default (the gated catalog size; other
    # sizes and the dense flavor are reported, not gated).
    fleet_scale = gate_scale(gates, "fleet")
    fleet_scale = 50 if fleet_scale is None else fleet_scale
    fleet = {}
    for row in rows:
        if row["bench"] == "e7_fleet/sparse":
            fleet.setdefault(row["scale"], {})[row["engine"]] = row["wall_ms"]
    gated = {k: e for k, e in fleet.items()
             if "fused" in e and "sequential" in e}
    if fleet_scale in gated:
        seq = gated[fleet_scale]["sequential"]
        fused = gated[fleet_scale]["fused"]
        speedup = seq / max(fused, 1e-9)
        print(f"e7_fleet/sparse (scale={fleet_scale:g}): sequential {seq:.2f} ms, "
              f"fused {fused:.2f} ms -> {speedup:.2f}x")
        if speedup < min_fleet_speedup:
            print(f"fused fleet speedup {speedup:.2f}x at {fleet_scale:g} members is "
                  f"below the required {min_fleet_speedup:.2f}x")
            return 1
    elif min_fleet_speedup > 0.0:
        print(f"fleet gate requested but no e7_fleet/sparse rows at "
              f"scale {fleet_scale:g}")
        return 1

    # Server certification cache: warm (cached) registration+certify
    # pass vs the cold first pass, judged at the largest fleet size.
    server = {}
    for row in rows:
        if row["bench"] == "e8_server/registration":
            server.setdefault(row["scale"], {})[row["engine"]] = row["wall_ms"]
    gated = [k for k, e in server.items() if "cold" in e and "warm" in e]
    if gated:
        k = max(gated)
        cold = server[k]["cold"]
        warm = server[k]["warm"]
        speedup = cold / max(warm, 1e-9)
        print(f"e8_server/registration (fleet={k:g}): cold {cold:.2f} ms, "
              f"warm {warm:.2f} ms -> {speedup:.2f}x")
        if speedup < min_server_cert_speedup:
            print(f"server cert-cache speedup {speedup:.2f}x at fleet "
                  f"size {k:g} is below the required "
                  f"{min_server_cert_speedup:.2f}x")
            return 1
    elif min_server_cert_speedup > 0.0:
        print("server cert-cache gate requested but no e8_server/registration "
              "rows with both cold and warm passes")
        return 1

    # Server /extract throughput floor: `scale` carries the request
    # count of the burst, so req/s = scale / wall_s.
    throughput = [r for r in rows if r["bench"] == "e8_server/throughput"]
    if throughput:
        for row in throughput:
            rps = row["scale"] / max(row["wall_ms"] / 1e3, 1e-9)
            print(f"e8_server/throughput ({row['engine']}): {row['scale']:g} "
                  f"requests in {row['wall_ms']:.2f} ms -> {rps:.1f} req/s")
            if rps < min_req_per_s:
                print(f"server throughput {rps:.1f} req/s is below the "
                      f"required {min_req_per_s:.1f} req/s")
                return 1
    elif min_req_per_s > 0.0:
        print("server throughput gate requested but no e8_server/throughput rows")
        return 1

    # AOT tier vs lazy dense on the e9 workload replays, judged at the
    # largest `scale` point per workload (or the pinned one); the AOT
    # tier must win on at least two workloads, not on every shape.
    aot_scale = gate_scale(gates, "aot")
    e9 = {}
    for row in rows:
        if row["bench"].startswith("e9_aot/"):
            e9.setdefault(row["bench"], {}).setdefault(
                row["scale"], {})[row["engine"]] = row["wall_ms"]
    winners = 0
    pairs = 0
    for bench, by_scale in sorted(e9.items()):
        ks = [k for k, e in by_scale.items() if "aot" in e and "dense" in e]
        if not ks:
            continue
        k = aot_scale if aot_scale is not None and aot_scale in ks else max(ks)
        dense_ms = by_scale[k]["dense"]
        aot_ms = by_scale[k]["aot"]
        speedup = dense_ms / max(aot_ms, 1e-9)
        print(f"{bench} (scale={k:g}): dense {dense_ms:.2f} ms, "
              f"aot {aot_ms:.2f} ms -> {speedup:.2f}x")
        pairs += 1
        if speedup >= min_aot_speedup:
            winners += 1
    if min_aot_speedup > 0.0:
        if pairs == 0:
            print("aot gate requested but no e9_aot rows with both engines")
            return 1
        if winners < 2:
            print(f"aot tier meets {min_aot_speedup:.2f}x on {winners} "
                  f"workload(s); at least 2 required")
            return 1

    # Incremental maintenance vs full rescan on the t8 edit workload,
    # judged at the largest `scale` (= maintained segments) point per
    # engine (or the pinned one); every engine present must meet the
    # ratio — incremental re-extraction must not regress on any tier.
    inc_scale = gate_scale(gates, "incremental")
    t8 = {}
    for row in rows:
        for kind in ("incremental", "full"):
            if row["bench"] == f"t8_incremental/{kind}":
                t8.setdefault(row["engine"], {}).setdefault(
                    row["scale"], {})[kind] = row["wall_ms"]
    pairs = 0
    for engine, by_scale in sorted(t8.items()):
        ks = [k for k, e in by_scale.items()
              if "incremental" in e and "full" in e]
        if not ks:
            continue
        k = inc_scale if inc_scale is not None and inc_scale in ks else max(ks)
        full = by_scale[k]["full"]
        inc = by_scale[k]["incremental"]
        speedup = full / max(inc, 1e-9)
        print(f"t8_incremental ({engine}, scale={k:g}): full {full:.2f} ms, "
              f"incremental {inc:.2f} ms -> {speedup:.2f}x")
        pairs += 1
        if speedup < min_incremental_speedup:
            print(f"incremental speedup {speedup:.2f}x ({engine}) at "
                  f"scale={k:g} is below the required "
                  f"{min_incremental_speedup:.2f}x")
            return 1
    if min_incremental_speedup > 0.0 and pairs == 0:
        print("incremental gate requested but no t8_incremental rows with "
              "both incremental and full passes")
        return 1

    print(f"OK: {len(rows)} rows; best dense speedup {best:.2f}x on {best_bench}")
    return 0


def main() -> int:
    return run(sys.argv)


if __name__ == "__main__":
    sys.exit(main())
