//! Quickstart: certify split-correctness, then evaluate in parallel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use split_correctness::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. An information extractor as a regex formula: capture every
    //    run of 'a's, anywhere in the document (the paper's stand-in for
    //    a sentence-local extractor such as NER).
    let p = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();

    // 2. A splitter: sentences — maximal period-free chunks.
    let s = splitters::sentences();
    println!("splitter `sentences` disjoint? {}", s.is_disjoint());

    // 3. Certify self-splittability (Theorem 5.16): evaluating P per
    //    sentence and unioning the shifted results equals evaluating P
    //    on the whole document.
    match self_splittable(&p, &s).unwrap() {
        Verdict::Holds => println!("P is self-splittable by sentences ✓"),
        Verdict::Fails(cex) => {
            println!("not splittable: {cex}");
            return;
        }
    }

    // 4. Contrast: a sentence-crossing extractor is rejected, with a
    //    concrete counterexample document.
    let crossing = Rgx::parse(".*x{a\\.a}.*").unwrap().to_vsa().unwrap();
    match self_splittable(&crossing, &s).unwrap() {
        Verdict::Fails(cex) => println!(
            "crossing extractor rejected; witness doc {:?}, tuple {}",
            String::from_utf8_lossy(&cex.doc),
            cex.tuple.display(crossing.vars()),
        ),
        Verdict::Holds => unreachable!(),
    }

    // 5. Cash in the certificate: parallel evaluation over sentences.
    let spanner = ExecSpanner::compile(&p);
    let split: SplitFn = Arc::new(native_splitters::sentences);
    let doc = b"aa bbb aaa. baab. ab aaaa b".repeat(2000);
    let t0 = std::time::Instant::now();
    let sequential = evaluate_sequential(&spanner, &doc);
    let t_seq = t0.elapsed();
    let t0 = std::time::Instant::now();
    let parallel = evaluate_split(&spanner, &split, &doc, 5);
    let t_par = t0.elapsed();
    assert_eq!(sequential, parallel, "certified: identical semantics");
    println!(
        "{} tuples; sequential {:?} vs split+parallel(5) {:?} — {:.2}x",
        sequential.len(),
        t_seq,
        t_par,
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
    );
}
