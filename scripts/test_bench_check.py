#!/usr/bin/env python3
"""Unit tests for scripts/bench_check.py (run with
`python3 scripts/test_bench_check.py` or unittest discovery; the CI
`scripts-test` step does the former).

Each test writes a synthetic BENCH JSON-lines file and drives
`bench_check.run(argv)` directly, asserting the exit code — so every
gate's pass/fail boundary is pinned without running any benchmark.
"""
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_check  # noqa: E402


def row(bench, engine, wall_ms, scale=1, bytes_=0, tuples=0):
    return {"bench": bench, "engine": engine, "bytes": bytes_,
            "scale": scale, "wall_ms": wall_ms, "tuples": tuples}


# A minimal always-passing base: one e-series bench where dense beats
# nfa 2x (the only unconditionally required gate).
BASE = [row("e1_ngram_speedup", "nfa", 100.0), row("e1_ngram_speedup", "dense", 50.0)]


class BenchCheckCase(unittest.TestCase):
    def run_with(self, rows, extra_argv):
        """Writes `rows` to a temp file and returns run()'s exit code."""
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
            for r in rows:
                f.write(json.dumps(r) + "\n")
            path = f.name
        try:
            return bench_check.run(["bench_check.py", path] + extra_argv)
        finally:
            os.unlink(path)

    def check(self, rows, *gates):
        """Legacy positional form (the back-compat shim under test)."""
        return self.run_with(rows, [str(g) for g in gates])

    def check_named(self, rows, *specs):
        """Named form: each spec is a `name:ratio[:scale]` string."""
        argv = []
        for spec in specs:
            argv += ["--gate", spec]
        return self.run_with(rows, argv)


class SchemaTests(BenchCheckCase):
    def test_valid_base_passes(self):
        self.assertEqual(self.check(BASE, 1.5), 0)

    def test_empty_file_fails(self):
        self.assertEqual(self.check([]), 1)

    def test_missing_field_fails(self):
        bad = dict(BASE[0])
        del bad["scale"]
        self.assertEqual(self.check([bad, BASE[1]]), 1)

    def test_wrong_type_fails(self):
        bad = dict(BASE[0])
        bad["bytes"] = "lots"
        self.assertEqual(self.check([bad, BASE[1]]), 1)

    def test_no_dual_engine_bench_fails(self):
        self.assertEqual(self.check([row("e1_ngram_speedup", "dense", 50.0)]), 1)


class DenseSpeedupGate(BenchCheckCase):
    def test_boundary(self):
        # BASE is exactly 2.0x.
        self.assertEqual(self.check(BASE, 2.0), 0)
        self.assertEqual(self.check(BASE, 2.1), 1)


class StreamGate(BenchCheckCase):
    def rows(self, batch, stream):
        return BASE + [row("e5_corpus_stream/batch", "dense", batch),
                       row("e5_corpus_stream/stream", "dense", stream)]

    def test_boundary(self):
        # batch 90 / stream 100 = 0.9x ratio.
        self.assertEqual(self.check(self.rows(90.0, 100.0), 1.5, 0.9), 0)
        self.assertEqual(self.check(self.rows(90.0, 100.0), 1.5, 0.95), 1)

    def test_absent_rows_are_not_gated(self):
        # The stream gate is only applied when e5 rows exist.
        self.assertEqual(self.check(BASE, 1.5, 10.0), 0)


class CertGate(BenchCheckCase):
    def rows(self, det, anti, k=8):
        return BASE + [
            row("t3_certification_scaling/needle", "determinize", det, scale=k),
            row("t3_certification_scaling/needle", "antichain", anti, scale=k)]

    def test_boundary(self):
        self.assertEqual(self.check(self.rows(300.0, 100.0), 1.5, 0, 3.0), 0)
        self.assertEqual(self.check(self.rows(300.0, 100.0), 1.5, 0, 3.1), 1)

    def test_judged_at_largest_scale(self):
        # Fails at scale 2 (1x) but holds at the larger scale 8 (3x):
        # only the largest point is gated.
        rows = self.rows(300.0, 100.0, k=8) + self.rows(100.0, 100.0, k=2)[2:]
        self.assertEqual(self.check(rows, 1.5, 0, 2.0), 0)

    def test_requested_but_missing_fails(self):
        self.assertEqual(self.check(BASE, 1.5, 0, 1.2), 1)


class PrefilterGate(BenchCheckCase):
    def rows(self, dense, prefilter):
        return BASE + [row("e6_sparse_prefilter", "dense", dense),
                       row("e6_sparse_prefilter", "prefilter", prefilter)]

    def test_boundary(self):
        self.assertEqual(self.check(self.rows(200.0, 100.0), 1.5, 0, 0, 2.0), 0)
        self.assertEqual(self.check(self.rows(200.0, 100.0), 1.5, 0, 0, 2.1), 1)

    def test_requested_but_missing_fails(self):
        self.assertEqual(self.check(BASE, 1.5, 0, 0, 1.5), 1)


class FleetGate(BenchCheckCase):
    def rows(self, seq, fused, scale=50):
        return BASE + [row("e7_fleet/sparse", "sequential", seq, scale=scale),
                       row("e7_fleet/sparse", "fused", fused, scale=scale)]

    def test_boundary(self):
        self.assertEqual(self.check(self.rows(150.0, 100.0), 1.5, 0, 0, 0, 1.5), 0)
        self.assertEqual(self.check(self.rows(150.0, 100.0), 1.5, 0, 0, 0, 1.6), 1)

    def test_gate_is_the_scale_50_point(self):
        # Rows only at scale 10 do not satisfy a requested fleet gate.
        self.assertEqual(
            self.check(self.rows(150.0, 100.0, scale=10), 1.5, 0, 0, 0, 1.2), 1)


class ServerCertGate(BenchCheckCase):
    def rows(self, cold, warm, scale=24):
        return BASE + [row("e8_server/registration", "cold", cold, scale=scale),
                       row("e8_server/registration", "warm", warm, scale=scale)]

    def test_boundary(self):
        self.assertEqual(
            self.check(self.rows(100.0, 50.0), 1.5, 0, 0, 0, 0, 2.0), 0)
        self.assertEqual(
            self.check(self.rows(100.0, 50.0), 1.5, 0, 0, 0, 0, 2.1), 1)

    def test_judged_at_largest_fleet(self):
        # 1.5x at fleet 4, 4x at fleet 24: the larger point is gated.
        rows = (self.rows(100.0, 25.0, scale=24)
                + self.rows(75.0, 50.0, scale=4)[2:])
        self.assertEqual(self.check(rows, 1.5, 0, 0, 0, 0, 3.0), 0)

    def test_requested_but_missing_fails(self):
        self.assertEqual(self.check(BASE, 1.5, 0, 0, 0, 0, 2.0), 1)


class ThroughputGate(BenchCheckCase):
    def rows(self, requests, wall_ms):
        return BASE + [row("e8_server/throughput", "dense", wall_ms,
                           scale=requests)]

    def test_boundary(self):
        # 32 requests in 4000 ms = 8 req/s.
        self.assertEqual(self.check(self.rows(32, 4000.0),
                                    1.5, 0, 0, 0, 0, 0, 8.0), 0)
        self.assertEqual(self.check(self.rows(32, 4000.0),
                                    1.5, 0, 0, 0, 0, 0, 8.1), 1)

    def test_requested_but_missing_fails(self):
        self.assertEqual(self.check(BASE, 1.5, 0, 0, 0, 0, 0, 5.0), 1)

    def test_absent_rows_are_not_gated_when_unrequested(self):
        self.assertEqual(self.check(BASE, 1.5), 0)


class NamedGateParser(BenchCheckCase):
    def test_named_equals_positional(self):
        rows = BASE + [row("e6_sparse_prefilter", "dense", 200.0),
                       row("e6_sparse_prefilter", "prefilter", 100.0)]
        self.assertEqual(self.check(rows, 1.5, 0, 0, 2.0),
                         self.check_named(rows, "dense:1.5", "prefilter:2.0"))
        self.assertEqual(self.check(rows, 1.5, 0, 0, 2.1),
                         self.check_named(rows, "dense:1.5", "prefilter:2.1"))

    def test_gate_equals_form(self):
        self.assertEqual(self.run_with(BASE, ["--gate=dense:2.0"]), 0)
        self.assertEqual(self.run_with(BASE, ["--gate=dense:2.1"]), 1)

    def test_unnamed_gates_keep_defaults(self):
        # BASE is 2.0x, above the 1.5x default dense gate; naming only
        # an unrelated gate must not disturb that default.
        stream = BASE + [row("e5_corpus_stream/batch", "dense", 90.0),
                         row("e5_corpus_stream/stream", "dense", 100.0)]
        self.assertEqual(self.check_named(stream, "stream:0.9"), 0)
        self.assertEqual(self.check_named(stream, "stream:0.95"), 1)

    def test_unknown_gate_name_is_usage_error(self):
        self.assertEqual(self.check_named(BASE, "warp:1.5"), 2)

    def test_malformed_gate_is_usage_error(self):
        self.assertEqual(self.check_named(BASE, "dense"), 2)
        self.assertEqual(self.check_named(BASE, "dense:fast"), 2)
        self.assertEqual(self.check_named(BASE, "dense:1:2:3"), 2)

    def test_mixing_positional_and_named_is_usage_error(self):
        self.assertEqual(self.run_with(BASE, ["1.5", "--gate", "aot:1.2"]), 2)

    def test_fleet_scale_component(self):
        rows = BASE + [row("e7_fleet/sparse", "sequential", 150.0, scale=10),
                       row("e7_fleet/sparse", "fused", 100.0, scale=10)]
        # Default fleet gate point is scale 50 — absent here — but the
        # scale component repoints it at the rows that do exist.
        self.assertEqual(self.check_named(rows, "fleet:1.2"), 1)
        self.assertEqual(self.check_named(rows, "fleet:1.2:10"), 0)
        self.assertEqual(self.check_named(rows, "fleet:1.6:10"), 1)


class AotGate(BenchCheckCase):
    def pair(self, workload, dense, aot, scale=1):
        return [row(f"e9_aot/{workload}", "dense", dense, scale=scale),
                row(f"e9_aot/{workload}", "aot", aot, scale=scale)]

    def test_two_of_four_workloads_suffice(self):
        rows = (BASE + self.pair("e1", 150.0, 100.0) + self.pair("e2", 200.0, 100.0)
                + self.pair("e3", 100.0, 100.0) + self.pair("e4", 90.0, 100.0))
        # e1 is 1.5x and e2 is 2.0x: two winners at 1.5x, one at 1.6x.
        self.assertEqual(self.check_named(rows, "aot:1.5"), 0)
        self.assertEqual(self.check_named(rows, "aot:1.6"), 1)

    def test_one_winner_is_not_enough(self):
        rows = BASE + self.pair("e1", 300.0, 100.0) + self.pair("e2", 100.0, 100.0)
        self.assertEqual(self.check_named(rows, "aot:2.0"), 1)

    def test_judged_at_largest_scale(self):
        # Each workload wins only at its largest scale point.
        rows = (BASE
                + self.pair("e1", 100.0, 100.0, scale=1)
                + self.pair("e1", 200.0, 100.0, scale=8)
                + self.pair("e2", 100.0, 100.0, scale=1)
                + self.pair("e2", 180.0, 100.0, scale=8))
        self.assertEqual(self.check_named(rows, "aot:1.5"), 0)

    def test_scale_component_pins_the_point(self):
        rows = (BASE
                + self.pair("e1", 200.0, 100.0, scale=1)
                + self.pair("e1", 100.0, 100.0, scale=8)
                + self.pair("e2", 180.0, 100.0, scale=1)
                + self.pair("e2", 100.0, 100.0, scale=8))
        self.assertEqual(self.check_named(rows, "aot:1.5"), 1)
        self.assertEqual(self.check_named(rows, "aot:1.5:1"), 0)

    def test_requested_but_missing_fails(self):
        self.assertEqual(self.check_named(BASE, "aot:1.2"), 1)

    def test_absent_rows_are_not_gated_when_unrequested(self):
        self.assertEqual(self.check_named(BASE, "dense:1.5"), 0)


class IncrementalGate(BenchCheckCase):
    def pair(self, engine, full, inc, scale=1000):
        return [row("t8_incremental/full", engine, full, scale=scale),
                row("t8_incremental/incremental", engine, inc, scale=scale)]

    def test_boundary(self):
        rows = BASE + self.pair("dense", 300.0, 100.0)
        self.assertEqual(self.check_named(rows, "incremental:3.0"), 0)
        self.assertEqual(self.check_named(rows, "incremental:3.1"), 1)

    def test_every_engine_must_meet_the_ratio(self):
        rows = (BASE + self.pair("dense", 400.0, 100.0)
                + self.pair("nfa", 200.0, 100.0))
        self.assertEqual(self.check_named(rows, "incremental:2.0"), 0)
        # nfa is only 2x: a 3x gate fails even though dense is 4x.
        self.assertEqual(self.check_named(rows, "incremental:3.0"), 1)

    def test_judged_at_largest_scale(self):
        # 1x at 1k segments, 5x at 100k: only the largest point is gated.
        rows = (BASE + self.pair("dense", 100.0, 100.0, scale=1000)
                + self.pair("dense", 500.0, 100.0, scale=100000))
        self.assertEqual(self.check_named(rows, "incremental:3.0"), 0)

    def test_scale_component_pins_the_point(self):
        rows = (BASE + self.pair("dense", 500.0, 100.0, scale=1000)
                + self.pair("dense", 100.0, 100.0, scale=100000))
        self.assertEqual(self.check_named(rows, "incremental:3.0"), 1)
        self.assertEqual(self.check_named(rows, "incremental:3.0:1000"), 0)

    def test_requested_but_missing_fails(self):
        self.assertEqual(self.check_named(BASE, "incremental:3.0"), 1)

    def test_absent_rows_are_not_gated_when_unrequested(self):
        self.assertEqual(self.check_named(BASE, "dense:1.5"), 0)


if __name__ == "__main__":
    unittest.main()
