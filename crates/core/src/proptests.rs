//! Property-based differential tests for the certification engine.
//!
//! The antichain-pruned containment engine must be *indistinguishable*
//! (up to cost) from the determinize-first reference on every
//! certification verdict: same holds/fails answer, witnesses of the
//! same minimal length, and every witness a genuine counterexample when
//! replayed through evaluation. Random `Rgx` spanner/splitter pairs are
//! drawn from the same seeded pools the spanner crate uses, plus the
//! guarded-product fast-path overlap cases (deterministic functional
//! inputs with a disjoint splitter, where `split_correct_df` must agree
//! with both general strategies).

use crate::split_correctness::{split_correct, split_correct_df, split_correct_with, Verdict};
use proptest::prelude::*;
use splitc_spanner::equiv::CheckStrategy;
use splitc_spanner::eval::eval;
use splitc_spanner::rgx::Rgx;
use splitc_spanner::splitter::{compose, Splitter};
use splitc_spanner::vsa::Vsa;

/// Extractor pool: patterns over {a, b, '.'} with one variable, chosen
/// to mix self-splittable, crossing, and context-dependent shapes.
const PATTERNS: &[&str] = &[
    ".*x{a+}.*",
    "x{a+}",
    ".*x{a\\.a}.*",
    "(.*\\.)?x{[ab]+}(\\..*)?",
    "x{[ab]*}",
    ".*x{ab}.*",
    "a?x{b+}a?",
    ".*x{}.*",
];

/// Splitter pool: disjoint and non-disjoint, covering and non-covering.
const SPLITTERS: &[&str] = &[
    "(.*\\.)?x{[^.]+}(\\..*)?", // sentences (disjoint)
    "x{.*}",                    // whole document (disjoint)
    ".*x{..}.*",                // 2-byte windows (non-disjoint)
    "x{a*}.*",                  // a-prefixes
];

fn vsa(p: &str) -> Vsa {
    Rgx::parse(p).unwrap().to_vsa().unwrap()
}

/// Replays a counterexample: the disputed tuple must be produced by
/// exactly one of `P` and `P_S ∘ S` on the witness document.
fn assert_witness_is_real(
    p: &Vsa,
    ps: &Vsa,
    s: &Splitter,
    verdict: &Verdict,
    label: &str,
) -> Result<(), TestCaseError> {
    if let Verdict::Fails(cex) = verdict {
        let composed = compose(ps, s);
        let in_p = eval(p, &cex.doc).contains(&cex.tuple);
        let in_comp = eval(&composed, &cex.doc).contains(&cex.tuple);
        prop_assert_ne!(
            in_p,
            in_comp,
            "{} witness must separate the sides: doc {:?} tuple {:?}",
            label,
            String::from_utf8_lossy(&cex.doc),
            cex.tuple.spans()
        );
        prop_assert_eq!(in_p, cex.left_has_it, "{} witness side flag", label);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Antichain and determinize-first certification agree on random
    /// spanner/splitter triples, and both produce minimal, replayable
    /// witnesses on failure.
    #[test]
    fn strategies_agree_on_split_correctness(
        pi in 0..PATTERNS.len(),
        qi in 0..PATTERNS.len(),
        si in 0..SPLITTERS.len(),
    ) {
        let p = vsa(PATTERNS[pi]);
        let ps = vsa(PATTERNS[qi]);
        let s = Splitter::parse(SPLITTERS[si]).unwrap();
        let anti = split_correct_with(&p, &ps, &s, CheckStrategy::Antichain).unwrap();
        let detf = split_correct_with(&p, &ps, &s, CheckStrategy::DeterminizeFirst).unwrap();
        prop_assert_eq!(anti.holds(), detf.holds(), "P={} PS={} S={}",
            PATTERNS[pi], PATTERNS[qi], SPLITTERS[si]);
        // Both searches are breadth-first, so the witness documents have
        // the same (minimal) length even when the tuples differ.
        if let (Verdict::Fails(a), Verdict::Fails(d)) = (&anti, &detf) {
            prop_assert_eq!(a.doc.len(), d.doc.len(), "shortest-witness lengths");
        }
        assert_witness_is_real(&p, &ps, &s, &anti, "antichain")?;
        assert_witness_is_real(&p, &ps, &s, &detf, "determinize-first")?;
    }

    /// The default entry point is the antichain strategy.
    #[test]
    fn default_strategy_is_antichain(
        pi in 0..PATTERNS.len(),
        si in 0..SPLITTERS.len(),
    ) {
        let p = vsa(PATTERNS[pi]);
        let s = Splitter::parse(SPLITTERS[si]).unwrap();
        let default = split_correct(&p, &p, &s).unwrap();
        let anti = split_correct_with(&p, &p, &s, CheckStrategy::Antichain).unwrap();
        prop_assert_eq!(default.holds(), anti.holds());
    }

    /// Guarded-product fast-path overlap: on deterministic functional
    /// inputs with a disjoint splitter, `split_correct_df` agrees with
    /// both general strategies. Patterns avoid boundary-adjacent empty
    /// spans, where the paper's pointwise procedure is documented to be
    /// strictly stronger (see `split_correctness` module docs).
    #[test]
    fn fast_path_overlap_agrees_with_both_strategies(
        pi in 0..PATTERNS.len(),
        qi in 0..PATTERNS.len(),
    ) {
        // ".*x{}.*" puts empty spans on split boundaries — the
        // documented pointwise divergence; skip it here (the shimmed
        // proptest has no prop_assume).
        if PATTERNS[pi] == ".*x{}.*" || PATTERNS[qi] == ".*x{}.*" {
            return Ok(());
        }
        let p = vsa(PATTERNS[pi]).determinize();
        let ps = vsa(PATTERNS[qi]).determinize();
        let s = Splitter::parse(SPLITTERS[0]).unwrap().determinize(); // sentences
        let fast = split_correct_df(&p, &ps, &s).unwrap();
        let anti = split_correct_with(&p, &ps, &s, CheckStrategy::Antichain).unwrap();
        let detf = split_correct_with(&p, &ps, &s, CheckStrategy::DeterminizeFirst).unwrap();
        prop_assert_eq!(anti.holds(), detf.holds());
        prop_assert_eq!(fast.holds(), anti.holds(),
            "fast path vs general: P={} PS={}", PATTERNS[pi], PATTERNS[qi]);
        assert_witness_is_real(&p, &ps, &s, &fast, "fast-path")?;
    }
}
