//! Language-level operations: containment, equivalence, counterexamples.
//!
//! Containment `L(A) ⊆ L(B)` is decided by a *lazy* subset construction on
//! `B` synchronized with a traversal of `A`: we explore reachable pairs
//! `(q, T)` of an `A`-state and a `B`-subset and fail as soon as an
//! accepting `q` is paired with a non-accepting `T`. When `B` is
//! deterministic the subsets stay singletons and the procedure runs in
//! time `O(|A|·|B|)` — this degeneration is exactly the paper's NL
//! containment algorithm for deterministic functional VSet-automata
//! (Theorem 4.3). For nondeterministic `B` it realizes the PSPACE
//! procedure (Theorem 4.1), strengthened by **antichain pruning** and
//! **symbol-class alphabet collapse** — see [`crate::antichain`], the
//! engine behind [`contains`] since the certification-engine rework
//! (subset-subsumed macro-states are never expanded, so hard instances
//! stay far below the determinized state count).

use crate::antichain;
use crate::nfa::{Nfa, Sym};

/// Outcome of a containment check: either contained, or a counterexample
/// word accepted by the left automaton and rejected by the right one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Containment {
    /// `L(A) ⊆ L(B)` holds.
    Contained,
    /// A witness word in `L(A) \ L(B)`.
    Counterexample(Vec<Sym>),
}

impl Containment {
    /// True iff containment holds.
    pub fn holds(&self) -> bool {
        matches!(self, Containment::Contained)
    }
}

/// Decides `L(a) ⊆ L(b)` and produces a shortest-by-construction
/// counterexample on failure (BFS order).
///
/// Since the certification-engine rework this delegates to the
/// antichain-pruned search of [`crate::antichain::contains`]; the
/// contract (verdict, shortest witness) is unchanged, only hard
/// nondeterministic instances got cheaper.
pub fn contains(a: &Nfa, b: &Nfa) -> Containment {
    antichain::contains(a, b)
}

/// Decides language equivalence; on failure reports which side has the
/// witness word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The languages are equal.
    Equivalent,
    /// Word accepted by the left automaton only.
    LeftOnly(Vec<Sym>),
    /// Word accepted by the right automaton only.
    RightOnly(Vec<Sym>),
}

impl Equivalence {
    /// True iff the languages are equal.
    pub fn holds(&self) -> bool {
        matches!(self, Equivalence::Equivalent)
    }
}

/// Decides `L(a) = L(b)`.
pub fn equivalent(a: &Nfa, b: &Nfa) -> Equivalence {
    match contains(a, b) {
        Containment::Counterexample(w) => Equivalence::LeftOnly(w),
        Containment::Contained => match contains(b, a) {
            Containment::Counterexample(w) => Equivalence::RightOnly(w),
            Containment::Contained => Equivalence::Equivalent,
        },
    }
}

/// Whether the automaton accepts every word over its alphabet
/// (universality; PSPACE-complete in general — used by tests and by the
/// hardness-family generators in the bench crate).
pub fn universal(a: &Nfa) -> Containment {
    let mut sigma_star = Nfa::new(a.alphabet_size());
    let q = sigma_star.add_state();
    sigma_star.add_start(q);
    sigma_star.set_final(q, true);
    for s in 0..a.alphabet_size() {
        sigma_star.add_transition(q, Sym(s), q);
    }
    contains(&sigma_star, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_nfa(asize: u32, w: &[u32]) -> Nfa {
        let mut n = Nfa::new(asize);
        let mut q = n.add_state();
        n.add_start(q);
        for &c in w {
            let r = n.add_state();
            n.add_transition(q, Sym(c), r);
            q = r;
        }
        n.set_final(q, true);
        n
    }

    fn sigma_star(asize: u32) -> Nfa {
        let mut n = Nfa::new(asize);
        let q = n.add_state();
        n.add_start(q);
        n.set_final(q, true);
        for s in 0..asize {
            n.add_transition(q, Sym(s), q);
        }
        n
    }

    #[test]
    fn word_in_sigma_star() {
        let w = word_nfa(2, &[0, 1, 0]);
        assert!(contains(&w, &sigma_star(2)).holds());
        assert_eq!(
            contains(&sigma_star(2), &w),
            Containment::Counterexample(vec![]) // empty word not in {aba}
        );
    }

    #[test]
    fn equivalence_direction() {
        let a = word_nfa(2, &[0]);
        let b = word_nfa(2, &[1]);
        match equivalent(&a, &b) {
            Equivalence::LeftOnly(w) => assert_eq!(w, vec![Sym(0)]),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(equivalent(&a, &word_nfa(2, &[0])).holds());
    }

    #[test]
    fn universality() {
        assert!(universal(&sigma_star(3)).holds());
        let w = word_nfa(2, &[0]);
        assert!(!universal(&w).holds());
    }

    #[test]
    fn counterexample_is_shortest() {
        // A = {a, aa}; B = {aa}. Shortest counterexample is "a".
        let mut a = word_nfa(1, &[0]);
        let f2 = a.add_state();
        a.add_transition(1, Sym(0), f2);
        a.set_final(f2, true);
        let b = word_nfa(1, &[0, 0]);
        match contains(&a, &b) {
            Containment::Counterexample(w) => assert_eq!(w.len(), 1),
            _ => panic!("should not be contained"),
        }
    }

    #[test]
    fn containment_with_eps_inputs() {
        let mut a = Nfa::new(2);
        let q0 = a.add_state();
        let q1 = a.add_state();
        a.add_start(q0);
        a.add_eps(q0, q1);
        a.set_final(q1, true);
        a.add_transition(q1, Sym(0), q1);
        // L(a) = a*
        let mut b = sigma_star(2);
        assert!(contains(&a, &b).holds());
        b = word_nfa(2, &[0]);
        assert!(!contains(&a, &b).holds());
    }
}
