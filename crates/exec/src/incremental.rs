//! Incremental evaluation under document edits.
//!
//! The paper (§1): *"when a large document undergoes a minor edit, like
//! in the Wikipedia model, only the relevant segments (e.g., sentences
//! or paragraphs) need to be reprocessed."* Given a certified
//! `P = P_S ∘ S`, evaluation factors through segments; caching the
//! per-segment relations by segment **content** makes re-evaluation of
//! an edited document cost only the changed segments.

use crate::engine::{ExecSpanner, SplitFn};
use parking_lot::Mutex;
use splitc_spanner::tuple::{SpanRelation, SpanTuple};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Cache statistics of an [`IncrementalRunner`].
///
/// One segment evaluation is counted per split span of every document
/// passed to [`IncrementalRunner::eval`]: a *hit* reuses the relation
/// stored for identical segment content (identical content ⇒ identical
/// relation, since spanners are functions of the segment bytes), a
/// *miss* evaluates the spanner and populates the cache. After an edit
/// that touches `k` of `n` segments, expect `k` misses and `n − k` hits
/// — the quantitative form of the paper's "only the relevant segments
/// need to be reprocessed". Counters are cumulative until
/// [`IncrementalRunner::clear`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Segments answered from cache.
    pub hits: usize,
    /// Segments evaluated from scratch.
    pub misses: usize,
}

/// Incremental evaluator: splits documents and caches per-segment
/// relations keyed by segment content hash (with collision verification
/// against the stored content bytes, so hash collisions cost a re-check,
/// never a wrong answer).
///
/// The cache is shared across documents and unbounded; call
/// [`IncrementalRunner::clear`] between unrelated corpora, and use
/// [`IncrementalRunner::cache_len`] / [`IncrementalRunner::stats`] to
/// size and measure it. Evaluation is sequential per document — for
/// corpus-scale parallel streaming see [`crate::corpus::CorpusRunner`],
/// which trades this cache for per-worker lazy-DFA caches.
pub struct IncrementalRunner {
    spanner: ExecSpanner,
    split: SplitFn,
    cache: Mutex<HashMap<u64, CachedEntry>>,
    stats: Mutex<CacheStats>,
}

struct CachedEntry {
    content: Vec<u8>,
    relation: SpanRelation,
}

impl IncrementalRunner {
    /// Creates a runner for a (split-)spanner and splitter.
    pub fn new(spanner: ExecSpanner, split: SplitFn) -> IncrementalRunner {
        IncrementalRunner {
            spanner,
            split,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Evaluates `P_S ∘ S` on the document, reusing cached segment
    /// results: each split span's relation is looked up by content,
    /// computed on miss, shifted by the span's offset (`≫`), and the
    /// union is returned. Equals whole-document evaluation of `P`
    /// whenever `P = P_S ∘ S` is certified.
    pub fn eval(&self, doc: &[u8]) -> SpanRelation {
        let chunks = (self.split)(doc);
        let mut tuples: Vec<SpanTuple> = Vec::new();
        for sp in chunks {
            let content = sp.slice(doc);
            let key = hash_bytes(content);
            let cache = self.cache.lock();
            let local = match cache.get(&key) {
                Some(entry) if entry.content == content => {
                    self.stats.lock().hits += 1;
                    entry.relation.clone()
                }
                _ => {
                    drop(cache);
                    let rel = self.spanner.eval(content);
                    self.stats.lock().misses += 1;
                    let mut cache = self.cache.lock();
                    cache.insert(
                        key,
                        CachedEntry {
                            content: content.to_vec(),
                            relation: rel.clone(),
                        },
                    );
                    rel
                }
            };
            tuples.extend(local.iter().map(|t| t.shift(sp)));
        }
        SpanRelation::from_tuples(tuples)
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Number of cached segments.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Clears the cache and statistics.
    pub fn clear(&self) {
        self.cache.lock().clear();
        *self.stats.lock() = CacheStats::default();
    }
}

fn hash_bytes(b: &[u8]) -> u64 {
    let mut h = DefaultHasher::new();
    b.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter::native;
    use std::sync::Arc;

    fn runner(pat: &str) -> IncrementalRunner {
        let spanner = ExecSpanner::compile(&Rgx::parse(pat).unwrap().to_vsa().unwrap());
        IncrementalRunner::new(spanner, Arc::new(native::sentences))
    }

    #[test]
    fn incremental_matches_direct() {
        let r = runner(".*x{a+}.*");
        let doc = b"aa b. c aaa. aa";
        let direct = r.spanner.eval(doc);
        assert_eq!(r.eval(doc), direct, "self-splittable: equal semantics");
    }

    #[test]
    fn single_segment_edit_reuses_other_segments() {
        let r = runner(".*x{a+}.*");
        let v1 = b"aaa bb. cc aa. dd a";
        let _ = r.eval(v1);
        let s1 = r.stats();
        assert_eq!(s1.misses, 3);
        assert_eq!(s1.hits, 0);
        // Edit the middle sentence only.
        let v2 = b"aaa bb. cc aaaa. dd a";
        let rel = r.eval(v2);
        let s2 = r.stats();
        assert_eq!(s2.misses, 4, "only the edited segment is recomputed");
        assert_eq!(s2.hits, 2, "the other two segments come from cache");
        // Semantics unaffected by caching.
        assert_eq!(rel, r.spanner.eval(v2));
    }

    #[test]
    fn repeated_segments_hit_cache_within_one_doc() {
        let r = runner(".*x{a+}.*");
        let doc = b"aa.aa.aa"; // three identical segments "aa"
        let rel = r.eval(doc);
        let s = r.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        // Per segment: x ∈ {a@0, a@1, aa} — 3 tuples, shifted apart.
        assert_eq!(rel.len(), 9, "shifted copies are distinct tuples");
        assert_eq!(r.cache_len(), 1);
    }

    #[test]
    fn clear_resets() {
        let r = runner("x{a*}");
        let _ = r.eval(b"aa");
        assert!(r.cache_len() > 0);
        r.clear();
        assert_eq!(r.cache_len(), 0);
        assert_eq!(r.stats(), CacheStats::default());
    }
}
