//! A minimal HTTP/1.1 layer over blocking streams.
//!
//! Implements exactly what the service protocol needs — request-line +
//! header parsing, `Content-Length` bodies, keep-alive connections, and
//! a response writer — over any `Read`/`Write` pair, so the unit tests
//! drive it with in-memory buffers and the server drives it with
//! `TcpStream`s. No chunked encoding, no TLS, no HTTP/2: clients that
//! need those belong behind a real reverse proxy.

use std::fmt;
use std::io::{BufRead, Write};

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (the origin-form target, query string included).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Protocol-level failures while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer sent something that is not HTTP.
    Malformed(String),
    /// The declared body exceeds the configured cap (maps to `413`).
    BodyTooLarge {
        /// Bytes the client declared.
        declared: usize,
        /// The server's cap.
        limit: usize,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Header count / line length caps — far above anything the protocol
/// produces, low enough to bound a hostile peer.
const MAX_HEADERS: usize = 64;
const MAX_LINE: usize = 8 << 10;

/// Reads one request from `stream`. Returns `Ok(None)` on clean EOF
/// before any byte of a request (the peer ended a keep-alive session).
pub fn read_request(
    stream: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let line = match read_line(stream)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }

    let mut headers = Vec::new();
    loop {
        let line =
            read_line(stream)?.ok_or_else(|| HttpError::Malformed("eof inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed("header without ':'".into()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
        if len > max_body {
            return Err(HttpError::BodyTooLarge {
                declared: len,
                limit: max_body,
            });
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        req.body = body;
    }
    Ok(Some(req))
}

/// Reads one CRLF- (or bare-LF-) terminated line. `Ok(None)` on
/// immediate EOF.
fn read_line(stream: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("eof inside line".into()));
            }
            _ => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("non-utf8 header line".into()))?;
                    return Ok(Some(line));
                }
                if buf.len() >= MAX_LINE {
                    return Err(HttpError::Malformed("line too long".into()));
                }
                buf.push(byte[0]);
            }
        }
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (always `application/json` in this service).
    pub body: Vec<u8>,
    /// Whether the connection closes after this response.
    pub close: bool,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl fmt::Display) -> Response {
        Response {
            status,
            body: body.to_string().into_bytes(),
            close: false,
        }
    }

    /// Marks the connection for closing after this response.
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }

    /// The standard reason phrase for the status codes this service
    /// emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, and body onto `out` as a single
    /// write — one response, one TCP segment where it fits. Writing the
    /// head and body separately stalls ~40ms per response on loopback
    /// (Nagle's algorithm holds the second segment until the delayed
    /// ACK of the first).
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        let mut wire = Vec::with_capacity(128 + self.body.len());
        write!(
            wire,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            self.reason(),
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )?;
        wire.extend_from_slice(&self.body);
        out.write_all(&wire)?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_post_with_body_and_keepalive_followup() {
        let wire = b"POST /extract HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcdGET /stats HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let req = read_request(&mut r, 1 << 20).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/extract");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
        let req2 = read_request(&mut r, 1 << 20).unwrap().unwrap();
        assert_eq!(
            (req2.method.as_str(), req2.path.as_str()),
            ("GET", "/stats")
        );
        assert!(req2.body.is_empty());
        assert!(
            read_request(&mut r, 1 << 20).unwrap().is_none(),
            "clean eof"
        );
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        assert!(matches!(
            read_request(&mut r, 10),
            Err(HttpError::BodyTooLarge {
                declared: 999,
                limit: 10
            })
        ));
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nno-colon\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n"[..],
        ] {
            let mut r = BufReader::new(bad);
            assert!(
                matches!(read_request(&mut r, 10), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        Response::json(429, "{}")
            .closing()
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn connection_close_header() {
        let wire = b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        assert!(read_request(&mut r, 10).unwrap().unwrap().wants_close());
    }
}
