//! T8 — paper §1: incremental maintenance. After a minor edit only the
//! touched segments are reprocessed. Measures full re-evaluation vs
//! cached incremental evaluation over a sequence of random edits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splitc_bench::{bench_json, engine_arg, ms, scaled, time, x, Table};
use splitc_exec::{ExecSpanner, IncrementalRunner, SplitFn};
use splitc_spanner::splitter::native;
use splitc_textgen::{spanners, wiki_corpus, CorpusConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let bytes = scaled(2 << 20);
    let cfg = CorpusConfig {
        target_bytes: bytes,
        ..Default::default()
    };
    let mut doc = wiki_corpus(&cfg);
    println!(
        "T8: incremental maintenance over a {:.1} MiB corpus, 50 random edits",
        bytes as f64 / (1 << 20) as f64
    );

    let engine = engine_arg();
    println!("engine: {}", engine.name());
    let spanner = ExecSpanner::compile_with(&spanners::entity_extractor(), engine);
    let runner = IncrementalRunner::new(spanner.clone(), Arc::new(native::sentences) as SplitFn);

    // Cold pass fills the cache.
    let (_, cold) = time(|| runner.eval(&doc));
    let cold_stats = runner.stats();

    let mut rng = StdRng::seed_from_u64(0xED17);
    let mut incr_total = Duration::ZERO;
    let mut full_total = Duration::ZERO;
    let mut recomputed = 0usize;
    let edits = 50;
    for _ in 0..edits {
        let pos = rng.gen_range(0..doc.len());
        let b = doc[pos];
        doc[pos] = if b.is_ascii_lowercase() { b'z' } else { b };
        let before = runner.stats().misses;
        let (incr_rel, t_incr) = time(|| runner.eval(&doc));
        incr_total += t_incr;
        recomputed += runner.stats().misses - before;
        let (full_rel, t_full) = time(|| spanner.eval(&doc));
        full_total += t_full;
        assert_eq!(incr_rel, full_rel, "incremental result must be exact");
    }

    let mut t = Table::new(
        "T8 — incremental vs full re-evaluation",
        &["metric", "value"],
    );
    t.row(&["cold pass ms".into(), ms(cold)]);
    t.row(&[
        "segments (cold misses)".into(),
        cold_stats.misses.to_string(),
    ]);
    t.row(&["edits".into(), edits.to_string()]);
    t.row(&[
        "avg segments recomputed/edit".into(),
        format!("{:.2}", recomputed as f64 / edits as f64),
    ]);
    t.row(&["avg incremental ms/edit".into(), ms(incr_total / edits)]);
    t.row(&["avg full re-eval ms/edit".into(), ms(full_total / edits)]);
    t.row(&[
        "incremental speedup".into(),
        x(full_total.as_secs_f64() / incr_total.as_secs_f64().max(1e-12)),
    ]);
    t.print();

    let (rel, seq_wall) = time(|| spanner.eval(&doc));
    bench_json(
        "t8_incremental/full_eval",
        engine.name(),
        doc.len(),
        doc.len() as f64,
        seq_wall,
        rel.len(),
    );
}
