//! Seeded random *spanners* (as opposed to the corpora of
//! [`crate::corpus`]): the shared generator behind the repository-wide
//! engine-matrix differential harness.
//!
//! Every differential suite — the root `tests/engine_matrix.rs`
//! campaign, the fleet proptests of `splitc-exec` — draws its random
//! spanner/document pairs from this one module, so a new engine is
//! exercised against exactly the same distribution as every existing
//! one. The generators are deterministic in their seed (the proptest
//! shim samples seeds; structure is derived with a SplitMix64 stream),
//! which keeps failures replayable across crates.

use splitc_spanner::byteset::ByteSet;
use splitc_spanner::rgx::{Ast, Rgx};
use splitc_spanner::vsa::Vsa;

/// Fixed spanner patterns covering the engine-relevant shapes: empty
/// spans, unions, multiple variables, `Σ*` contexts (skip-loop bait),
/// and literal anchors (prefilter bait).
pub const PATTERNS: &[&str] = &[
    "x{a+}",
    ".*x{a}.*",
    "x{a*}y{b*}",
    "(a|b)*x{ab}(a|b)*",
    "x{[ab]+}",
    "a?x{b}a?",
    ".*x{}.*",
    "x{a|bb}",
    "(x{a}b)|(a(x{b}))",
    ".*x{a.a}.*",
];

/// Fixed splitter patterns: disjoint delimiters, the whole document,
/// overlapping windows, empty-capable prefixes, and the paper's
/// Example 5.8.
pub const SPLITTER_PATTERNS: &[&str] = &[
    "(.*\\.)?x{[^.]+}(\\..*)?", // sentences
    "x{.*}",                    // whole document
    ".*x{..}.*",                // 2-byte windows (non-disjoint)
    "x{a*}.*",                  // prefix of a's (incl. empty)
    "x{ab}b|a(x{bb})",          // paper example 5.8
];

/// Tiny SplitMix64 stream for seeded structure generation.
#[derive(Debug)]
pub struct Mix(pub u64);

impl Mix {
    /// The next raw 64-bit draw.
    pub fn draw(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw uniform-ish below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.draw() % bound
    }
}

/// A random variable-free regex AST over the `{a, b, c, ab, any, ε}`
/// leaf alphabet, depth-bounded. The distribution deliberately yields
/// literal anchors (prefilter gates engage), `Σ*` contexts (skip-loops
/// engage) and plain automata (everything falls back) in one stream.
pub fn rand_boolean_ast(rng: &mut Mix, depth: usize) -> Ast {
    let leaf = |rng: &mut Mix| match rng.below(6) {
        0 => Ast::Bytes(ByteSet::single(b'a')),
        1 => Ast::Bytes(ByteSet::single(b'b')),
        2 => Ast::Bytes(ByteSet::single(b'c')),
        3 => Ast::Bytes(ByteSet::from_bytes(b"ab")),
        4 => Ast::Bytes(ByteSet::FULL),
        _ => Ast::Epsilon,
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(6) {
        0 | 1 => leaf(rng),
        2 => Ast::Concat(vec![
            rand_boolean_ast(rng, depth - 1),
            rand_boolean_ast(rng, depth - 1),
        ]),
        3 => Ast::Alt(vec![
            rand_boolean_ast(rng, depth - 1),
            rand_boolean_ast(rng, depth - 1),
        ]),
        4 => Ast::Star(Box::new(rand_boolean_ast(rng, depth - 1))),
        _ => Ast::Opt(Box::new(rand_boolean_ast(rng, depth - 1))),
    }
}

/// A random *functional* spanner: a top-level concatenation with one or
/// two variables at fixed slots (each path binds every variable exactly
/// once) and random boolean contexts around them.
pub fn rand_spanner_vsa(seed: u64) -> Vsa {
    let mut rng = Mix(seed);
    let two_vars = rng.below(2) == 0;
    let mut parts = vec![
        rand_boolean_ast(&mut rng, 2),
        Ast::Var("x".into(), Box::new(rand_boolean_ast(&mut rng, 2))),
        rand_boolean_ast(&mut rng, 2),
    ];
    if two_vars {
        parts.push(Ast::Var(
            "y".into(),
            Box::new(rand_boolean_ast(&mut rng, 2)),
        ));
        parts.push(rand_boolean_ast(&mut rng, 2));
    }
    Rgx::from_ast(Ast::Concat(parts))
        .expect("generated variables are well-formed")
        .to_vsa()
        .expect("generated AST is functional by construction")
}

/// A random single-variable spanner drawn from an existing stream (used
/// for fleet members, where the pool spans the whole gate spectrum:
/// strong literal evidence, required-byte-only, and catch-alls).
pub fn rand_member_vsa(rng: &mut Mix) -> Vsa {
    let parts = vec![
        rand_boolean_ast(rng, 2),
        Ast::Var("x".into(), Box::new(rand_boolean_ast(rng, 2))),
        rand_boolean_ast(rng, 2),
    ];
    Rgx::from_ast(Ast::Concat(parts))
        .expect("generated variables are well-formed")
        .to_vsa()
        .expect("generated AST is functional by construction")
}

/// A seeded fleet of `n` random single-variable spanners.
pub fn rand_fleet(seed: u64, n: usize) -> Vec<Vsa> {
    let mut rng = Mix(seed);
    (0..n).map(|_| rand_member_vsa(&mut rng)).collect()
}

/// A match-dense document: up to `max_len` bytes over the alphabet the
/// generated spanners and the library splitters both react to (letters,
/// sentence/line delimiters, token boundaries).
pub fn dense_doc(seed: u64, max_len: usize) -> Vec<u8> {
    let mut rng = Mix(seed ^ 0xD0C5);
    let len = if max_len == 0 {
        0
    } else {
        rng.below(max_len as u64 + 1) as usize
    };
    (0..len)
        .map(|_| match rng.below(6) {
            0 => b'a',
            1 => b'b',
            2 => b'c',
            3 => b'.',
            4 => b'\n',
            _ => b' ',
        })
        .collect()
}

/// A match-sparse document: long runs of filler with rare interesting
/// bytes — the shape prefilter gates and skip-loops are built for.
pub fn sparse_doc(seed: u64, max_len: usize) -> Vec<u8> {
    let mut rng = Mix(seed ^ 0x5BA2);
    let len = if max_len == 0 {
        0
    } else {
        rng.below(max_len as u64 + 1) as usize
    };
    (0..len)
        .map(|_| match rng.below(17) {
            0 => b'a',
            1..=8 => b'b',
            _ => b'.',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(
                rand_spanner_vsa(seed).vars().names(),
                rand_spanner_vsa(seed).vars().names()
            );
            assert_eq!(dense_doc(seed, 32), dense_doc(seed, 32));
            assert_eq!(sparse_doc(seed, 64), sparse_doc(seed, 64));
        }
    }

    #[test]
    fn generated_spanners_are_functional() {
        for seed in 0..32u64 {
            assert!(rand_spanner_vsa(seed).is_functional());
        }
        assert_eq!(rand_fleet(7, 5).len(), 5);
    }

    #[test]
    fn fixed_patterns_parse() {
        for p in PATTERNS {
            Rgx::parse(p).unwrap().to_vsa().unwrap();
        }
        for p in SPLITTER_PATTERNS {
            splitc_spanner::splitter::Splitter::parse(p).unwrap();
        }
    }
}
