//! Nondeterministic finite automata over a dense symbol alphabet.

use std::collections::VecDeque;

/// A symbol of the (interned) alphabet. Symbols are dense indices
/// `0..alphabet_size`; the mapping to application-level symbols (bytes,
/// variable operations, pairs) is maintained by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The dense index of the symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A state identifier, dense in `0..num_states`.
pub type StateId = u32;

/// A nondeterministic finite automaton with ε-transitions.
///
/// States are dense `u32` ids. Multiple start states are allowed (this is
/// convenient for products and reversals). Transitions are stored as
/// per-state adjacency lists.
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet_size: u32,
    /// `trans[q]` lists `(symbol, target)` pairs.
    trans: Vec<Vec<(Sym, StateId)>>,
    /// `eps[q]` lists ε-successors of `q`.
    eps: Vec<Vec<StateId>>,
    starts: Vec<StateId>,
    finals: Vec<bool>,
}

impl Nfa {
    /// Creates an empty automaton (no states) over an alphabet of the given
    /// size.
    pub fn new(alphabet_size: u32) -> Self {
        Nfa {
            alphabet_size,
            trans: Vec::new(),
            eps: Vec::new(),
            starts: Vec::new(),
            finals: Vec::new(),
        }
    }

    /// The alphabet size this automaton was constructed over.
    #[inline]
    pub fn alphabet_size(&self) -> u32 {
        self.alphabet_size
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Total number of (symbol and ε) transitions.
    pub fn num_transitions(&self) -> usize {
        self.trans.iter().map(Vec::len).sum::<usize>()
            + self.eps.iter().map(Vec::len).sum::<usize>()
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = self.trans.len() as StateId;
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.finals.push(false);
        id
    }

    /// Adds `n` fresh states, returning the id of the first.
    pub fn add_states(&mut self, n: usize) -> StateId {
        let first = self.trans.len() as StateId;
        for _ in 0..n {
            self.add_state();
        }
        first
    }

    /// Marks a state as a start state.
    pub fn add_start(&mut self, q: StateId) {
        debug_assert!((q as usize) < self.num_states());
        if !self.starts.contains(&q) {
            self.starts.push(q);
        }
    }

    /// Marks or unmarks a state as accepting.
    pub fn set_final(&mut self, q: StateId, is_final: bool) {
        self.finals[q as usize] = is_final;
    }

    /// Adds a symbol transition.
    pub fn add_transition(&mut self, from: StateId, sym: Sym, to: StateId) {
        debug_assert!(sym.0 < self.alphabet_size, "symbol out of alphabet");
        self.trans[from as usize].push((sym, to));
    }

    /// Adds an ε-transition.
    pub fn add_eps(&mut self, from: StateId, to: StateId) {
        self.eps[from as usize].push(to);
    }

    /// Start states.
    #[inline]
    pub fn starts(&self) -> &[StateId] {
        &self.starts
    }

    /// Whether `q` is accepting.
    #[inline]
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q as usize]
    }

    /// Iterator over accepting states.
    pub fn final_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.finals
            .iter()
            .enumerate()
            .filter(|(_, f)| **f)
            .map(|(q, _)| q as StateId)
    }

    /// Symbol transitions leaving `q`.
    #[inline]
    pub fn transitions_from(&self, q: StateId) -> &[(Sym, StateId)] {
        &self.trans[q as usize]
    }

    /// ε-transitions leaving `q`.
    #[inline]
    pub fn eps_from(&self, q: StateId) -> &[StateId] {
        &self.eps[q as usize]
    }

    /// Whether the automaton has any ε-transition.
    pub fn has_eps(&self) -> bool {
        self.eps.iter().any(|v| !v.is_empty())
    }

    /// Computes the ε-closure of a set of states (sorted, deduplicated).
    pub fn eps_closure(&self, set: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut stack: Vec<StateId> = Vec::with_capacity(set.len());
        for &q in set {
            if !seen[q as usize] {
                seen[q as usize] = true;
                stack.push(q);
            }
        }
        let mut out = stack.clone();
        while let Some(q) = stack.pop() {
            for &r in self.eps_from(q) {
                if !seen[r as usize] {
                    seen[r as usize] = true;
                    stack.push(r);
                    out.push(r);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Returns an equivalent automaton without ε-transitions.
    ///
    /// Classic closure-based elimination: each state gets the symbol
    /// transitions of its ε-closure, and becomes accepting if its closure
    /// contains an accepting state.
    ///
    /// The result's transition lists are sorted and deduplicated, so this
    /// also serves as a normalization pass (parallel duplicate edges are
    /// collapsed — relevant for run counting and unambiguity analysis).
    pub fn remove_eps(&self) -> Nfa {
        let mut out = Nfa::new(self.alphabet_size);
        out.add_states(self.num_states());
        for q in 0..self.num_states() as StateId {
            let closure = self.eps_closure(&[q]);
            let mut fin = false;
            let mut edges: Vec<(Sym, StateId)> = Vec::new();
            for &c in &closure {
                fin |= self.is_final(c);
                edges.extend_from_slice(self.transitions_from(c));
            }
            edges.sort_unstable();
            edges.dedup();
            out.trans[q as usize] = edges;
            out.finals[q as usize] = fin;
        }
        for &s in &self.starts {
            out.add_start(s);
        }
        out
    }

    /// States reachable from the start states (forward, through both symbol
    /// and ε edges).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states()];
        let mut queue: VecDeque<StateId> = VecDeque::new();
        for &s in &self.starts {
            if !seen[s as usize] {
                seen[s as usize] = true;
                queue.push_back(s);
            }
        }
        while let Some(q) = queue.pop_front() {
            for &(_, r) in self.transitions_from(q) {
                if !seen[r as usize] {
                    seen[r as usize] = true;
                    queue.push_back(r);
                }
            }
            for &r in self.eps_from(q) {
                if !seen[r as usize] {
                    seen[r as usize] = true;
                    queue.push_back(r);
                }
            }
        }
        seen
    }

    /// States from which an accepting state is reachable (backward).
    pub fn co_reachable(&self) -> Vec<bool> {
        // Build reverse adjacency.
        let n = self.num_states();
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for q in 0..n {
            for &(_, r) in &self.trans[q] {
                rev[r as usize].push(q as StateId);
            }
            for &r in &self.eps[q] {
                rev[r as usize].push(q as StateId);
            }
        }
        let mut seen = vec![false; n];
        let mut queue: VecDeque<StateId> = VecDeque::new();
        for (q, (s, &fin)) in seen.iter_mut().zip(self.finals.iter()).enumerate() {
            if fin {
                *s = true;
                queue.push_back(q as StateId);
            }
        }
        while let Some(q) = queue.pop_front() {
            for &r in &rev[q as usize] {
                if !seen[r as usize] {
                    seen[r as usize] = true;
                    queue.push_back(r);
                }
            }
        }
        seen
    }

    /// Removes states that are not both reachable and co-reachable,
    /// compacting state ids. The result accepts the same language.
    pub fn trim(&self) -> Nfa {
        let reach = self.reachable();
        let co = self.co_reachable();
        let keep: Vec<bool> = reach.iter().zip(co.iter()).map(|(a, b)| *a && *b).collect();
        let mut remap: Vec<Option<StateId>> = vec![None; self.num_states()];
        let mut out = Nfa::new(self.alphabet_size);
        for (q, &k) in keep.iter().enumerate() {
            if k {
                remap[q] = Some(out.add_state());
            }
        }
        for (q, &k) in keep.iter().enumerate() {
            if !k {
                continue;
            }
            let nq = remap[q].unwrap();
            out.finals[nq as usize] = self.finals[q];
            for &(s, r) in &self.trans[q] {
                if let Some(nr) = remap[r as usize] {
                    out.trans[nq as usize].push((s, nr));
                }
            }
            for &r in &self.eps[q] {
                if let Some(nr) = remap[r as usize] {
                    out.eps[nq as usize].push(nr);
                }
            }
        }
        for &s in &self.starts {
            if let Some(ns) = remap[s as usize] {
                out.add_start(ns);
            }
        }
        out
    }

    /// The reversal of the automaton: accepts the mirror language.
    pub fn reverse(&self) -> Nfa {
        let mut out = Nfa::new(self.alphabet_size);
        out.add_states(self.num_states());
        for q in 0..self.num_states() {
            for &(s, r) in &self.trans[q] {
                out.add_transition(r, s, q as StateId);
            }
            for &r in &self.eps[q] {
                out.add_eps(r, q as StateId);
            }
        }
        for q in self.final_states() {
            out.add_start(q);
        }
        for &s in &self.starts {
            out.set_final(s, true);
        }
        out
    }

    /// Product automaton accepting the intersection of the two languages.
    ///
    /// Both automata must be ε-free (call [`Nfa::remove_eps`] first); this
    /// is asserted in debug builds.
    pub fn intersect(&self, other: &Nfa) -> Nfa {
        debug_assert!(!self.has_eps() && !other.has_eps());
        debug_assert_eq!(self.alphabet_size, other.alphabet_size);
        product(self, other, |f1, f2| f1 && f2)
    }

    /// Disjoint-union automaton accepting the union of the two languages.
    pub fn union(&self, other: &Nfa) -> Nfa {
        debug_assert_eq!(self.alphabet_size, other.alphabet_size);
        let mut out = self.clone();
        let off = out.num_states() as StateId;
        out.add_states(other.num_states());
        for q in 0..other.num_states() {
            let nq = off + q as StateId;
            out.finals[nq as usize] = other.finals[q];
            for &(s, r) in &other.trans[q] {
                out.trans[nq as usize].push((s, off + r));
            }
            for &r in &other.eps[q] {
                out.eps[nq as usize].push(off + r);
            }
        }
        for &s in &other.starts {
            out.add_start(off + s);
        }
        out
    }

    /// Whether the automaton accepts the given word.
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut cur = self.eps_closure(&self.starts.clone());
        for &sym in word {
            let mut next: Vec<StateId> = Vec::new();
            for &q in &cur {
                for &(s, r) in self.transitions_from(q) {
                    if s == sym {
                        next.push(r);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            if next.is_empty() {
                return false;
            }
            cur = self.eps_closure(&next);
        }
        cur.iter().any(|&q| self.is_final(q))
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        let reach = self.reachable();
        !self.finals.iter().enumerate().any(|(q, &f)| f && reach[q])
    }

    /// Enumerates up to `limit` accepted words in length-lexicographic
    /// order, exploring words up to length `max_len`. Intended for tests and
    /// counterexample reporting.
    pub fn enumerate_words(&self, max_len: usize, limit: usize) -> Vec<Vec<Sym>> {
        let nfa = self.remove_eps();
        let mut out = Vec::new();
        let start = nfa.eps_closure(&nfa.starts.clone());
        let mut layer: Vec<(Vec<Sym>, Vec<StateId>)> = vec![(Vec::new(), start)];
        for len in 0..=max_len {
            for (w, states) in &layer {
                if states.iter().any(|&q| nfa.is_final(q)) {
                    out.push(w.clone());
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            if len == max_len {
                break;
            }
            let mut next_layer: Vec<(Vec<Sym>, Vec<StateId>)> = Vec::new();
            for (w, states) in &layer {
                for sym in 0..nfa.alphabet_size {
                    let sym = Sym(sym);
                    let mut next: Vec<StateId> = Vec::new();
                    for &q in states {
                        for &(s, r) in nfa.transitions_from(q) {
                            if s == sym {
                                next.push(r);
                            }
                        }
                    }
                    next.sort_unstable();
                    next.dedup();
                    if !next.is_empty() {
                        let mut w2 = w.clone();
                        w2.push(sym);
                        next_layer.push((w2, next));
                    }
                }
            }
            layer = next_layer;
        }
        out
    }
}

/// Generic product of two ε-free NFAs with a configurable acceptance
/// combination (e.g. `&&` for intersection, `|q1| f1 && !f2` patterns are
/// *not* sound on NFAs — use determinization for complements).
pub(crate) fn product(a: &Nfa, b: &Nfa, accept: impl Fn(bool, bool) -> bool) -> Nfa {
    use std::collections::HashMap;
    let mut out = Nfa::new(a.alphabet_size);
    let mut map: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
    for &s1 in a.starts() {
        for &s2 in b.starts() {
            let id = *map.entry((s1, s2)).or_insert_with(|| {
                queue.push_back((s1, s2));
                out.add_state()
            });
            out.add_start(id);
        }
    }
    while let Some((q1, q2)) = queue.pop_front() {
        let id = map[&(q1, q2)];
        out.finals[id as usize] = accept(a.is_final(q1), b.is_final(q2));
        for &(s, r1) in a.transitions_from(q1) {
            for &(s2, r2) in b.transitions_from(q2) {
                if s == s2 {
                    let rid = *map.entry((r1, r2)).or_insert_with(|| {
                        queue.push_back((r1, r2));
                        out.add_state()
                    });
                    out.add_transition(id, s, rid);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab_star_a() -> Nfa {
        // (a|b)* a  over {a=0, b=1}
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.add_start(q0);
        n.set_final(q1, true);
        n.add_transition(q0, Sym(0), q0);
        n.add_transition(q0, Sym(1), q0);
        n.add_transition(q0, Sym(0), q1);
        n
    }

    #[test]
    fn accepts_basic() {
        let n = ab_star_a();
        assert!(n.accepts(&[Sym(0)]));
        assert!(n.accepts(&[Sym(1), Sym(0)]));
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[Sym(1)]));
    }

    #[test]
    fn eps_closure_and_removal() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.add_start(q0);
        n.add_eps(q0, q1);
        n.add_eps(q1, q2);
        n.add_transition(q2, Sym(0), q2);
        n.set_final(q2, true);
        assert_eq!(n.eps_closure(&[q0]), vec![0, 1, 2]);
        let m = n.remove_eps();
        assert!(!m.has_eps());
        assert!(m.accepts(&[]));
        assert!(m.accepts(&[Sym(0), Sym(0)]));
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut n = ab_star_a();
        let dead = n.add_state();
        n.add_transition(0, Sym(1), dead); // dead end
        let t = n.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&[Sym(1), Sym(0)]));
    }

    #[test]
    fn reverse_reverses() {
        let n = ab_star_a(); // words ending in a
        let r = n.reverse(); // words starting with a
        assert!(r.accepts(&[Sym(0), Sym(1)]));
        assert!(!r.accepts(&[Sym(1), Sym(0)]));
    }

    #[test]
    fn intersect_works() {
        let ends_a = ab_star_a();
        // words starting with a
        let starts_a = ab_star_a().reverse().reverse(); // same language? no — build directly
        let mut s = Nfa::new(2);
        let p0 = s.add_state();
        let p1 = s.add_state();
        s.add_start(p0);
        s.set_final(p1, true);
        s.add_transition(p0, Sym(0), p1);
        s.add_transition(p1, Sym(0), p1);
        s.add_transition(p1, Sym(1), p1);
        let both = ends_a.remove_eps().intersect(&s.remove_eps());
        assert!(both.accepts(&[Sym(0)]));
        assert!(both.accepts(&[Sym(0), Sym(1), Sym(0)]));
        assert!(!both.accepts(&[Sym(1), Sym(0)]));
        assert!(!both.accepts(&[Sym(0), Sym(1)]));
        let _ = starts_a;
    }

    #[test]
    fn union_works() {
        let mut a = Nfa::new(2);
        let q = a.add_state();
        let f = a.add_state();
        a.add_start(q);
        a.set_final(f, true);
        a.add_transition(q, Sym(0), f);
        let mut b = Nfa::new(2);
        let q = b.add_state();
        let f = b.add_state();
        b.add_start(q);
        b.set_final(f, true);
        b.add_transition(q, Sym(1), f);
        let u = a.union(&b);
        assert!(u.accepts(&[Sym(0)]));
        assert!(u.accepts(&[Sym(1)]));
        assert!(!u.accepts(&[Sym(0), Sym(1)]));
    }

    #[test]
    fn enumerate_words_orders_by_length() {
        let n = ab_star_a();
        let words = n.enumerate_words(2, 10);
        assert_eq!(
            words,
            vec![vec![Sym(0)], vec![Sym(0), Sym(0)], vec![Sym(1), Sym(0)]]
        );
    }

    #[test]
    fn empty_language() {
        let mut n = Nfa::new(1);
        let q = n.add_state();
        n.add_start(q);
        assert!(n.is_empty());
        n.set_final(q, true);
        assert!(!n.is_empty());
    }
}
