#![warn(missing_docs)]
//! Synthetic corpora and workload spanners for the split-correctness
//! experiments.
//!
//! The paper's Introduction reports speedups on Wikipedia, PubMed,
//! Reuters and Amazon Fine Food Reviews data. Those corpora are not
//! redistributable here; this crate generates *synthetic equivalents*
//! that preserve the properties the experiments depend on — segment
//! count and length distributions, token structure compatible with the
//! formal splitters (sentences end with `.`, tokens are alphanumeric and
//! space-separated, paragraphs/messages are separated by blank lines) —
//! as documented in the top-level `README.md` ("Synthetic corpora").
//!
//! * [`corpus`] — seeded, size-parameterized document and collection
//!   generators.
//! * [`edits`] — seeded Wikipedia-model edit scripts (point edits,
//!   appends, shard rewrites) over sharded corpora: the workload
//!   driver behind the incremental-maintenance benchmark.
//! * [`spangen`] — seeded random spanners, splitter/fleet pools and
//!   adversarial documents: the shared generator behind the
//!   repository-wide engine-matrix differential test harness.
//! * [`spanners`] — the workload extractors: N-gram enumeration,
//!   financial-transaction events, negative-sentiment targets, person
//!   names, HTTP request lines.

pub mod corpus;
pub mod edits;
pub mod spangen;
pub mod spanners;

pub use corpus::{
    articles_corpus, fleet_keyword, http_log, keyword_corpus, keyword_corpus_shards, pubmed_corpus,
    reviews_corpus, skewed_articles_corpus, sparse_number_corpus, sparse_number_shards,
    wiki_corpus, wiki_corpus_chunks, wiki_corpus_shards, CorpusConfig, WikiChunks,
};
