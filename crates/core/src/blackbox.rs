//! Split-constrained black boxes (paper §7.1).
//!
//! Real IE pipelines join regular "glue" spanners with opaque extractors
//! (coreference resolvers, neural NER taggers, …) whose internals cannot
//! be analyzed, but for which *split constraints* are known: "`π` is
//! self-splittable by `S`". The inference problem asks whether the whole
//! join `α ⋈ P₁ ⋈ ⋯ ⋈ P_k` is splittable by `S` for **every** instance
//! satisfying the constraints.
//!
//! Theorem 7.4 gives the positive inference implemented by
//! [`infer_join_splittable`]: if `S` is disjoint, the signature is
//! connected, `α` is splittable by `S`, and every symbol carries the
//! constraint `πᵢ ⊑ S`, then the join is splittable by `S` — uniformly,
//! with the witness `α_S ⋈ P₁ ⋈ ⋯ ⋈ P_k`. Lemma 7.3 shows the
//! disjointness hypothesis cannot be dropped (reproduced in the tests).

use crate::error::CertError;
use crate::splittability::{splittable, SplittabilityVerdict};
use splitc_spanner::evsa::EVsa;
use splitc_spanner::splitter::Splitter;
use splitc_spanner::vars::VarTable;
use splitc_spanner::vsa::Vsa;
use std::collections::{BTreeMap, BTreeSet};

/// A spanner symbol of a signature: a name plus its variables.
#[derive(Debug, Clone)]
pub struct SpannerSymbol {
    /// Symbol name (e.g. `"coref"`).
    pub name: String,
    /// `SVars(π)`.
    pub vars: VarTable,
}

/// A spanner signature `Π = {π₁, …, π_k}` (paper §7.1). Must be
/// *connected*: the hypergraph whose hyperedges are the symbols'
/// variable sets is connected.
#[derive(Debug, Clone)]
pub struct Signature {
    symbols: Vec<SpannerSymbol>,
}

impl Signature {
    /// Builds a signature; rejects duplicate names and disconnected
    /// hypergraphs (the paper assumes connectedness).
    pub fn new(symbols: Vec<SpannerSymbol>) -> Result<Signature, String> {
        let mut names = BTreeSet::new();
        for s in &symbols {
            if !names.insert(s.name.clone()) {
                return Err(format!("duplicate spanner symbol {}", s.name));
            }
        }
        let sig = Signature { symbols };
        if !sig.is_connected() {
            return Err("signature hypergraph is not connected".into());
        }
        Ok(sig)
    }

    /// The symbols.
    pub fn symbols(&self) -> &[SpannerSymbol] {
        &self.symbols
    }

    fn is_connected(&self) -> bool {
        if self.symbols.len() <= 1 {
            return true;
        }
        // Union-find over symbols via shared variable names.
        let n = self.symbols.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        let mut by_var: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.symbols.iter().enumerate() {
            for name in s.vars.names() {
                by_var.entry(name.as_str()).or_default().push(i);
            }
        }
        for (_, members) in by_var {
            for w in members.windows(2) {
                let a = find(&mut parent, w[0]);
                let b = find(&mut parent, w[1]);
                parent[a] = b;
            }
        }
        let root = find(&mut parent, 0);
        (0..n).all(|i| find(&mut parent, i) == root)
    }
}

/// A regular split constraint `π ⊑ S`: the symbol is promised to be
/// self-splittable by the splitter.
#[derive(Debug, Clone)]
pub struct SplitConstraint {
    /// Constrained symbol name.
    pub symbol: String,
    /// The splitter the symbol is self-splittable by.
    pub splitter: Splitter,
}

/// An instance of a signature: a concrete spanner per symbol (used by
/// tests and by callers that *do* have the implementations and want to
/// check `I ⊨ C`).
#[derive(Debug, Clone, Default)]
pub struct Instance {
    spanners: BTreeMap<String, Vsa>,
}

impl Instance {
    /// Empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Binds a symbol to a spanner.
    pub fn bind(&mut self, name: impl Into<String>, spanner: Vsa) -> &mut Self {
        self.spanners.insert(name.into(), spanner);
        self
    }

    /// The spanner bound to a name.
    pub fn get(&self, name: &str) -> Option<&Vsa> {
        self.spanners.get(name)
    }

    /// Checks `I ⊨ C`: every constrained symbol's spanner is
    /// self-splittable by the constraint's splitter.
    pub fn satisfies(&self, constraints: &[SplitConstraint]) -> Result<bool, CertError> {
        for c in constraints {
            let p = self
                .get(&c.symbol)
                .ok_or_else(|| CertError::Invalid(format!("symbol {} is unbound", c.symbol)))?;
            if !crate::self_splittable(p, &c.splitter)?.holds() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Materializes the join `α ⋈ P₁ ⋈ ⋯ ⋈ P_k` over the signature
    /// order.
    pub fn join_with(&self, alpha: &Vsa, signature: &Signature) -> Result<Vsa, String> {
        let mut acc: EVsa = crate::util::normal_evsa(alpha);
        for sym in signature.symbols() {
            let p = self
                .get(&sym.name)
                .ok_or_else(|| format!("symbol {} is unbound", sym.name))?;
            acc = acc.join(&crate::util::normal_evsa(p));
        }
        // Convert back to a classic automaton via the normalized NFA.
        let ext =
            splitc_spanner::ext::ExtAlphabet::from_masks(acc.vars().clone(), &acc.byte_masks());
        let nfa = acc.to_nfa(&ext);
        Ok(Vsa::from_ext_nfa(&nfa.trim(), &ext))
    }
}

/// Outcome of the black-box inference.
#[derive(Debug, Clone)]
pub enum BlackBoxVerdict {
    /// Theorem 7.4 applies: the join is splittable by `S` for every
    /// satisfying instance, via `α_S ⋈ P₁ ⋈ ⋯ ⋈ P_k`.
    Inferred {
        /// The split-spanner for the `α` part (`α = witness ∘ S`).
        alpha_witness: Vsa,
    },
    /// The premises do not hold; inference is not possible (which does
    /// **not** mean the join is unsplittable for every instance).
    NotApplicable {
        /// Which premise failed.
        reason: String,
    },
}

impl BlackBoxVerdict {
    /// Whether the inference succeeded.
    pub fn inferred(&self) -> bool {
        matches!(self, BlackBoxVerdict::Inferred { .. })
    }
}

/// Black-box split-correctness inference (Theorem 7.4): given a regular
/// spanner `α`, a connected signature with constraints `πᵢ ⊑ S` for the
/// **same disjoint** splitter `S`, the join `α ⋈ I` is splittable by `S`
/// for every instance `I ⊨ C`.
pub fn infer_join_splittable(
    alpha: &Vsa,
    signature: &Signature,
    constraints: &[SplitConstraint],
    s: &Splitter,
) -> Result<BlackBoxVerdict, CertError> {
    if !s.is_disjoint() {
        return Ok(BlackBoxVerdict::NotApplicable {
            reason: "splitter is not disjoint (Lemma 7.3 shows the hypothesis is \
                     necessary)"
                .into(),
        });
    }
    // Every symbol must carry a constraint with (semantically) the same
    // splitter.
    for sym in signature.symbols() {
        let Some(c) = constraints.iter().find(|c| c.symbol == sym.name) else {
            return Ok(BlackBoxVerdict::NotApplicable {
                reason: format!("symbol {} has no split constraint", sym.name),
            });
        };
        let same = splitter_equiv(&c.splitter, s)?;
        if !same {
            return Ok(BlackBoxVerdict::NotApplicable {
                reason: format!("constraint on {} uses a different splitter", sym.name),
            });
        }
    }
    // α itself must be splittable by S.
    match splittable(alpha, s)? {
        SplittabilityVerdict::Splittable { witness } => Ok(BlackBoxVerdict::Inferred {
            alpha_witness: witness,
        }),
        SplittabilityVerdict::NotSplittable(cex) => Ok(BlackBoxVerdict::NotApplicable {
            reason: format!("α is not splittable by S: {cex}"),
        }),
    }
}

/// Semantic equality of two splitters.
fn splitter_equiv(a: &Splitter, b: &Splitter) -> Result<bool, CertError> {
    let table = VarTable::new(["x"]).expect("single");
    let av = a.vsa().replace_var_table(table.clone())?;
    let bv = b.vsa().replace_var_table(table)?;
    Ok(splitc_spanner::spanner_equivalent(&av, &bv)?.holds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::eval::eval;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;
    use splitc_spanner::tuple::SpanRelation;

    fn vsa(p: &str) -> Vsa {
        Rgx::parse(p).unwrap().to_vsa().unwrap()
    }

    fn sym(name: &str, vars: &[&str]) -> SpannerSymbol {
        SpannerSymbol {
            name: name.into(),
            vars: VarTable::new(vars.iter().copied()).unwrap(),
        }
    }

    #[test]
    fn signature_connectedness() {
        assert!(Signature::new(vec![sym("p1", &["x", "y"]), sym("p2", &["y", "z"])]).is_ok());
        assert!(Signature::new(vec![sym("p1", &["x"]), sym("p2", &["z"])]).is_err());
        assert!(Signature::new(vec![sym("p1", &["x"]), sym("p1", &["x"])]).is_err());
    }

    #[test]
    fn lemma_7_3_counterexample() {
        // P1 = Σ*·x1{a}·x2{b}·Σ*, P2 = Σ*·x2{b}·x3{a}·Σ*,
        // S = Σ*·x{aΣ + Σa}·Σ*: both are self-splittable by S, but
        // P1 ⋈ P2 violates the cover condition on "aba".
        let p1 = vsa(".*x1{a}x2{b}.*");
        let p2 = vsa(".*x2{b}x3{a}.*");
        let s = Splitter::parse(".*x{(a.|.a)}.*").unwrap();
        assert!(!s.is_disjoint());
        assert!(crate::self_splittable(&p1, &s).unwrap().holds());
        assert!(crate::self_splittable(&p2, &s).unwrap().holds());
        // The join on "aba" outputs ([1,2⟩,[2,3⟩,[3,4⟩) (1-based) whose
        // minimal cover is the whole document — no split covers it.
        let j = crate::util::normal_evsa(&p1).join(&crate::util::normal_evsa(&p2));
        let rel = splitc_spanner::eval::eval_evsa(&j, b"aba");
        assert_eq!(rel.len(), 1);
        let t = &rel.tuples()[0];
        let cover = t.minimal_cover().unwrap();
        assert!(!s.split(b"aba").iter().any(|sp| sp.contains_span(cover)));
    }

    #[test]
    fn theorem_7_4_inference_and_soundness() {
        // α finds a marker token; the "black boxes" are sentence-local
        // extractors sharing variables with α. S = sentences (disjoint).
        let alpha = vsa(".*q(x{[ab]+})q.*");
        let p1 = vsa(".*q(x{[ab]+})q y{[ab]+}.*"); // x then adjacent token y
        let sig = Signature::new(vec![sym("p1", &["x", "y"])]).unwrap();
        let s = splitter::sentences();
        let constraints = vec![SplitConstraint {
            symbol: "p1".into(),
            splitter: s.clone(),
        }];
        // Premises: α splittable (it is sentence-local: q...q cannot
        // contain '.'? q is a letter... x content [ab]+ and q are
        // period-free, so yes).
        let verdict = infer_join_splittable(&alpha, &sig, &constraints, &s).unwrap();
        assert!(verdict.inferred(), "{verdict:?}");

        // Soundness on a concrete instance: I ⊨ C, and the join is
        // splittable — validate pointwise on a sample document.
        let mut inst = Instance::new();
        inst.bind("p1", p1.clone());
        assert!(inst.satisfies(&constraints).unwrap());
        let join = inst.join_with(&alpha, &sig).unwrap();
        let BlackBoxVerdict::Inferred { alpha_witness } = verdict else {
            unreachable!()
        };
        // Witness for the join: α_S ⋈ P1 (Theorem 7.4's construction).
        let join_witness_e =
            crate::util::normal_evsa(&alpha_witness).join(&crate::util::normal_evsa(&p1));
        let doc = b"qaq ab. qbq ba";
        let mut expected = Vec::new();
        for sp in s.split(doc) {
            for t in splitc_spanner::eval::eval_evsa(&join_witness_e, sp.slice(doc)).iter() {
                expected.push(t.shift(sp));
            }
        }
        assert_eq!(
            SpanRelation::from_tuples(expected),
            eval(&join, doc),
            "P = (α_S ⋈ P1) ∘ S on the sample"
        );
    }

    #[test]
    fn inference_requires_constraints_on_all_symbols() {
        let alpha = vsa(".*x{a}.*");
        let sig = Signature::new(vec![sym("p1", &["x"])]).unwrap();
        let s = splitter::sentences();
        let v = infer_join_splittable(&alpha, &sig, &[], &s).unwrap();
        assert!(!v.inferred());
    }

    #[test]
    fn inference_rejects_nondisjoint() {
        let alpha = vsa(".*x{a}.*");
        let sig = Signature::new(vec![sym("p1", &["x"])]).unwrap();
        let s = splitter::ngrams(2);
        let constraints = vec![SplitConstraint {
            symbol: "p1".into(),
            splitter: s.clone(),
        }];
        let v = infer_join_splittable(&alpha, &sig, &constraints, &s).unwrap();
        assert!(!v.inferred());
    }

    #[test]
    fn constraint_with_different_splitter_rejected() {
        let alpha = vsa(".*x{a}.*");
        let sig = Signature::new(vec![sym("p1", &["x"])]).unwrap();
        let s = splitter::sentences();
        let constraints = vec![SplitConstraint {
            symbol: "p1".into(),
            splitter: splitter::lines(),
        }];
        let v = infer_join_splittable(&alpha, &sig, &constraints, &s).unwrap();
        assert!(!v.inferred());
    }
}
