//! The paper's concrete claims, examples and counterexamples, verified
//! one by one against the library (a "table of facts" reproduction of
//! the non-benchmark content).

use split_correctness::core::annotated::{AnnotatedSplitter, KeySpannerMapping};
use split_correctness::core::reasoning::{commute, subsumes};
use split_correctness::prelude::*;
use splitc_core::annotated::annotated_split_correct;
use splitc_spanner::eval::eval;
use splitc_spanner::splitter::compose;

fn vsa(p: &str) -> Vsa {
    Rgx::parse(p).unwrap().to_vsa().unwrap()
}

/// §3 (after Def. 3.1): sentence and paragraph splitters are disjoint;
/// N-gram splitters are not disjoint for N > 1.
#[test]
fn section_3_disjointness_catalogue() {
    assert!(splitters::sentences().is_disjoint());
    assert!(splitters::paragraphs().is_disjoint());
    assert!(splitters::lines().is_disjoint());
    assert!(splitters::whole_document().is_disjoint());
    assert!(splitters::ngrams(1).is_disjoint());
    for n in 2..=4 {
        assert!(!splitters::ngrams(n).is_disjoint(), "{n}-grams overlap");
    }
}

/// §3.1: the email/phone proximity spanner ("at most three tokens in
/// between") is self-splittable by N-grams for N ≥ 5 but not N < 5.
///
/// Reproduction note: the claim holds under the "windows of a bounded
/// number N of words" reading of N-grams ([`splitters::ngram_windows`]).
/// With exactly-N windows ([`splitters::ngrams`]) it fails on documents
/// shorter than N tokens — a genuine edge case the paper glosses over,
/// surfaced by the decision procedure itself.
#[test]
fn section_3_1_proximity_vs_ngram_threshold() {
    // Scaled to fit test budgets: "at most ONE token in between" over a
    // two-letter token alphabet — self-splittable by N-windows iff N >= 3.
    let b = "[^A-Za-z0-9]"; // token boundary
    let p = vsa(&format!("(.*{b}|)e{{[ab]+}} ([ab]+ |)p{{[ab]+}}({b}.*|)"));
    assert!(
        !self_splittable(&p, &splitters::ngram_windows(2))
            .unwrap()
            .holds(),
        "windows of 2 tokens are too small"
    );
    assert!(
        self_splittable(&p, &splitters::ngram_windows(3))
            .unwrap()
            .holds(),
        "windows of 3 tokens suffice"
    );
    // And larger windows stay correct (monotone in this family).
    assert!(self_splittable(&p, &splitters::ngram_windows(4))
        .unwrap()
        .holds());
    // The exactly-N reading fails even at N = 3: a two-token document
    // has no 3-gram, so the pair on it is not covered.
    assert!(
        !self_splittable(&p, &splitters::ngrams(3)).unwrap().holds(),
        "exactly-N windows miss short documents"
    );
}

/// Example 5.8: both `P_S = a·y{b}` and `P_S' = y{b}·b` witness the
/// splittability of `P = a·y{b}·b` by the *non-disjoint* splitter
/// `S = x{ab}·b + a·x{bb}`, and they are different spanners.
#[test]
fn example_5_8_two_witnesses() {
    let p = vsa("a(y{b})b");
    let s = Splitter::parse("x{ab}b|a(x{bb})").unwrap();
    assert!(!s.is_disjoint());
    let ps1 = vsa("a(y{b})");
    let ps2 = vsa("y{b}b");
    assert!(split_correct(&p, &ps1, &s).unwrap().holds());
    assert!(split_correct(&p, &ps2, &s).unwrap().holds());
    assert!(
        !splitc_spanner::spanner_equivalent(&ps1, &ps2)
            .unwrap()
            .holds(),
        "the two split-spanners differ (PS ≠ PS′)"
    );
}

/// Example 5.13: the splittability condition's second requirement fails
/// for `P = ab·y{b} + c·y{b}·b` and `S = x{Σ*} + Σ*·x{bb}·Σ*`, yet P is
/// self-splittable — Lemma 5.12 genuinely needs disjointness.
#[test]
fn example_5_13_condition_fails_but_self_splittable() {
    let p = vsa("ab(y{b})|c(y{b})b");
    let s = Splitter::parse("x{.*}|.*x{bb}.*").unwrap();
    assert!(!s.is_disjoint());
    // The condition-2 violation, concretely: s = [2,4⟩ (1-based) is
    // selected by S on both "abb" and "cbb"; the same local tuple shifts
    // into P(abb) but not into P(cbb).
    let s_of_abb = s.split(b"abb");
    let s_of_cbb = s.split(b"cbb");
    let window = Span::new(1, 3);
    assert!(s_of_abb.contains(&window));
    assert!(s_of_cbb.contains(&window));
    let t_local = SpanTuple::new(vec![Span::new(1, 2)]); // y on 2nd byte
    let t1 = t_local.shift(window);
    assert!(eval(&p, b"abb").contains(&t1));
    assert!(!eval(&p, b"cbb").contains(&t1));
    // Nevertheless P = P ∘ S.
    assert!(self_splittable(&p, &s).unwrap().holds());
}

/// Lemma 5.14: for disjoint S with P = P_S ∘ S, the canonical
/// split-spanner is contained in every witness.
#[test]
fn lemma_5_14_on_http_logs() {
    let p = vsa("(.*\\n\\n|)x{[a-z]+}(\\n.*|)");
    let ps = vsa("x{[a-z]+}(\\n.*|)");
    let s = splitters::http_messages();
    assert!(s.is_disjoint());
    assert!(split_correct(&p, &ps, &s).unwrap().holds());
    let can = canonical_split_spanner(&p, &s);
    assert!(splitc_spanner::spanner_contains(&can, &ps).unwrap().holds());
}

/// §6 introduction: splitting by pages and then by paragraphs equals
/// splitting by paragraphs and then by pages — instantiated with lines
/// (pages) and sentences (paragraphs).
#[test]
fn section_6_commutativity_instance() {
    assert!(commute(&splitters::lines(), &splitters::sentences(), None)
        .unwrap()
        .holds());
}

/// §6: "an K-gram extractor can be applied to the chunks of an N-gram
/// extractor whenever K ≤ N" — the subsumption direction S = S' ∘ S
/// (K-grams of N-gram chunks re-derive the K-grams... of the chunks).
/// We verify the concrete composition statement instead: every K-gram of
/// the document appears among the K-grams of the N-gram chunks.
#[test]
fn section_6_kgram_within_ngram() {
    let k2 = splitters::ngrams(2);
    let n3 = splitters::ngrams(3);
    let composed = splitc_spanner::splitter::compose_splitter(&k2, &n3);
    for doc in [
        b"one two three four".as_slice(),
        b"a bb ccc",
        b"t1 t2 t3 t4 t5",
    ] {
        let direct: Vec<Span> = k2.split(doc);
        let nested: Vec<Span> = composed.split(doc);
        // K ≤ N: every directly-extracted K-gram appears nested (the
        // nested set can be no larger — K-grams of N-grams are K-grams).
        assert_eq!(direct, nested, "doc {:?}", String::from_utf8_lossy(doc));
    }
}

/// §7.3 example: route GET and POST messages to different split-spanners
/// through an annotated splitter.
#[test]
fn section_7_3_get_post_routing() {
    let get = Splitter::parse("(.*\\n\\n|)x{get [a-z]+(\\n[a-z ]+)*}(\\n\\n.*|)").unwrap();
    let post = Splitter::parse("(.*\\n\\n|)x{post [a-z]+(\\n[a-z ]+)*}(\\n\\n.*|)").unwrap();
    let sk =
        AnnotatedSplitter::new([("get".to_string(), get), ("post".to_string(), post)]).unwrap();
    let log = b"get alpha\nhost h\n\npost beta\nhost i";
    let pairs = sk.split(log);
    assert_eq!(pairs.len(), 2);
    assert!(sk.is_highlander());

    // Method-specific extraction assembled through the annotated
    // composition (Lemma E.2): GET -> path token, POST -> host value.
    let mapping = KeySpannerMapping::new([
        ("get".to_string(), vsa("get y{[a-z]+}(\\n.*|)")),
        (
            "post".to_string(),
            vsa("post [a-z]+\\nhost y{[a-z]+}(\\n.*|)"),
        ),
    ])
    .unwrap();
    let composed = splitc_core::annotated::annotated_compose(&mapping, &sk).unwrap();
    let rel = eval(&composed, log);
    let y = composed.vars().lookup("y").unwrap();
    let texts: Vec<&[u8]> = rel.iter().map(|t| t.get(y).slice(log)).collect();
    assert_eq!(texts, vec![b"alpha".as_slice(), b"i".as_slice()]);

    // And the assembled spanner is annotated-split-correct w.r.t. a
    // method-blind P that matches the same union.
    let p = vsa(
        "(.*\\n\\n|)(get y{[a-z]+}(\\n[a-z ]+)*|post [a-z]+\\nhost y{[a-z]+}(\\n[a-z ]+)*)(\\n\\n.*|)",
    );
    assert!(annotated_split_correct(&p, &mapping, &sk).unwrap().holds());
}

/// The composed spanner construction (Lemma C.1/C.2) agrees with the
/// pointwise composition definition on generated corpora.
#[test]
fn lemma_c2_composition_on_corpora() {
    use split_correctness::textgen::{wiki_corpus, CorpusConfig};
    let ps = vsa("y{[A-Z][a-z]+}(.*|)");
    let s = splitters::sentences();
    let composed = compose(&ps, &s);
    let doc = wiki_corpus(&CorpusConfig {
        target_bytes: 2 << 10,
        ..Default::default()
    });
    let direct = eval(&composed, &doc);
    let mut expected = Vec::new();
    for sp in s.split(&doc) {
        for t in eval(&ps, sp.slice(&doc)).iter() {
            expected.push(t.shift(sp));
        }
    }
    assert_eq!(direct, SpanRelation::from_tuples(expected));
}

/// Subsumption from the built-in library: lines subsume paragraph
/// re-splitting (lines = lines ∘ paragraphs fails — a line spanning the
/// whole paragraph is a chunk of it; see T7), while sentences subsume
/// sentences.
#[test]
fn subsumption_catalogue_matches_t7() {
    assert!(
        subsumes(&splitters::sentences(), &splitters::sentences(), None)
            .unwrap()
            .holds()
    );
    assert!(
        subsumes(&splitters::lines(), &splitters::paragraphs(), None)
            .unwrap()
            .holds()
    );
    assert!(
        !subsumes(&splitters::sentences(), &splitters::paragraphs(), None)
            .unwrap()
            .holds()
    );
}
