//! A small blocking HTTP/1.1 client for the service protocol.
//!
//! Used by the integration tests and the `e8_server` benchmark; it
//! speaks exactly the subset the server implements (JSON bodies,
//! `Content-Length`, keep-alive) over one persistent connection per
//! [`Client`].

use crate::json::Json;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A persistent-connection client.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
}

/// A client-side failure (transport or protocol).
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client error: {}", self.0)
    }
}

impl std::error::Error for ClientError {}

impl Client {
    /// A client for the server at `addr`. The connection is opened
    /// lazily on the first request and reused (keep-alive) afterwards.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, stream: None }
    }

    /// POSTs `body` to `path`; returns `(status, parsed body)`.
    pub fn post(&mut self, path: &str, body: &Json) -> Result<(u16, Json), ClientError> {
        self.request("POST", path, Some(body))
    }

    /// GETs `path`; returns `(status, parsed body)`.
    pub fn get(&mut self, path: &str) -> Result<(u16, Json), ClientError> {
        self.request("GET", path, None)
    }

    /// PUTs `body` to `path` (corpus resource creation/replacement);
    /// returns `(status, parsed body)`.
    pub fn put(&mut self, path: &str, body: &Json) -> Result<(u16, Json), ClientError> {
        self.request("PUT", path, Some(body))
    }

    /// DELETEs `path`; returns `(status, parsed body)`.
    pub fn delete(&mut self, path: &str) -> Result<(u16, Json), ClientError> {
        self.request("DELETE", path, None)
    }

    fn connect(&mut self) -> Result<&mut BufReader<TcpStream>, ClientError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)
                .map_err(|e| ClientError(format!("connect {}: {e}", self.addr)))?;
            // Requests go out as one write; disable Nagle so keep-alive
            // round-trips are not throttled by delayed ACKs.
            let _ = stream.set_nodelay(true);
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        // One transparent retry on a fresh connection: the server may
        // have dropped a kept-alive socket between requests.
        match self.request_once(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) if self.stream.is_none() => self.request_once(method, path, body),
            Err(e) => Err(e),
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let payload = body.map(|b| b.to_string()).unwrap_or_default();
        let had_stream = self.stream.is_some();
        let reader = self.connect()?;
        let wire = format!(
            "{method} {path} HTTP/1.1\r\nHost: splitc\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len(),
        );
        let outcome = (|| -> std::io::Result<(u16, bool, Vec<u8>)> {
            reader.get_mut().write_all(wire.as_bytes())?;
            reader.get_mut().flush()?;

            let mut line = String::new();
            reader.read_line(&mut line)?;
            let status: u16 = line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad status line {line:?}"),
                    )
                })?;
            let mut content_length = 0usize;
            let mut close = false;
            loop {
                let mut header = String::new();
                reader.read_line(&mut header)?;
                let header = header.trim_end();
                if header.is_empty() {
                    break;
                }
                if let Some((name, value)) = header.split_once(':') {
                    let name = name.trim().to_ascii_lowercase();
                    if name == "content-length" {
                        content_length = value.trim().parse().map_err(|_| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "bad content-length",
                            )
                        })?;
                    } else if name == "connection" && value.trim().eq_ignore_ascii_case("close") {
                        close = true;
                    }
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            Ok((status, close, body))
        })();
        match outcome {
            Ok((status, close, body)) => {
                if close {
                    self.stream = None;
                }
                let text = String::from_utf8(body)
                    .map_err(|_| ClientError("non-utf8 response body".into()))?;
                let parsed =
                    Json::parse(&text).map_err(|e| ClientError(format!("bad response: {e}")))?;
                Ok((status, parsed))
            }
            Err(e) => {
                // A dead kept-alive socket is retryable; report whether
                // the failure happened on a reused connection by
                // clearing the stream so `request` retries fresh.
                self.stream = None;
                if had_stream {
                    Err(ClientError(format!("request on kept-alive socket: {e}")))
                } else {
                    Err(ClientError(format!("{method} {path}: {e}")))
                }
            }
        }
    }
}
