//! Document splitters (paper §3) and their algorithmics.
//!
//! A *splitter* is a unary spanner. This module provides:
//!
//! * [`Splitter`] — validated wrapper around a unary [`Vsa`];
//! * [`Splitter::split`] — producing the set of split spans of a document;
//! * [`Splitter::is_disjoint`] — the pairwise-disjointness check of
//!   Proposition 5.5, implemented as a synchronized two-run product
//!   simulation with difference/overlap flags (NL in the automaton size);
//! * [`compose`] — the composed spanner `P ∘ S` (Lemma C.1/C.2): the
//!   explicit three-phase product construction, computable in polynomial
//!   time;
//! * a library of realistic splitters: sentences, lines, paragraphs /
//!   HTTP messages, token N-grams, character windows, and the trivial
//!   whole-document splitter — each in *formal* (VSet-automaton) form,
//!   with fast native counterparts in [`native`] cross-validated by the
//!   test suite.

use crate::byteset::ByteSet;
use crate::dense::{DenseConfig, DenseEvsa};
use crate::eval::eval;
use crate::evsa::EVsa;
use crate::prefilter::{PrefilterAnalysis, PrefilterGate};
use crate::rgx::{Ast, Rgx};
use crate::span::Span;
use crate::stream::{SplitterState, StreamTables};
use crate::vars::{VarId, VarOp};
use crate::vsa::{Label, Vsa};
use splitc_automata::nfa::StateId;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, OnceLock};

/// A document splitter: a unary spanner.
#[derive(Debug, Clone)]
pub struct Splitter {
    vsa: Vsa,
}

impl Splitter {
    /// Wraps a unary VSet-automaton; errors when the arity is not 1.
    pub fn new(vsa: Vsa) -> Result<Splitter, String> {
        if vsa.vars().len() != 1 {
            return Err(format!(
                "a splitter must have exactly one variable, got {}",
                vsa.vars()
            ));
        }
        Ok(Splitter { vsa })
    }

    /// Builds a splitter from a regex formula with one variable.
    pub fn from_rgx(rgx: &Rgx) -> Result<Splitter, String> {
        Splitter::new(rgx.to_vsa().map_err(|e| e.to_string())?)
    }

    /// Parses a one-variable regex formula into a splitter.
    pub fn parse(pattern: &str) -> Result<Splitter, String> {
        Splitter::from_rgx(&Rgx::parse(pattern).map_err(|e| e.to_string())?)
    }

    /// The underlying automaton.
    pub fn vsa(&self) -> &Vsa {
        &self.vsa
    }

    /// The splitter variable's name (`x_S`).
    pub fn var_name(&self) -> &str {
        self.vsa.vars().name(VarId(0))
    }

    /// Evaluates the splitter: the set of split spans of `doc`, sorted.
    pub fn split(&self, doc: &[u8]) -> Vec<Span> {
        eval(&self.vsa, doc)
            .iter()
            .map(|t| t.get(VarId(0)))
            .collect()
    }

    /// Compiled splitting for repeated use: block normal form plus the
    /// dense byte-class / lazy-DFA fast path (see [`crate::dense`]).
    pub fn compile(&self) -> CompiledSplitter {
        self.compile_with(DenseConfig::default())
    }

    /// [`Splitter::compile`] with explicit dense-engine configuration.
    pub fn compile_with(&self, config: DenseConfig) -> CompiledSplitter {
        let f = if self.vsa.is_functional() {
            self.vsa.trim()
        } else {
            self.vsa.functionalize()
        };
        let evsa = Arc::new(EVsa::from_functional(&f));
        let gate = Arc::new(PrefilterAnalysis::analyze(&evsa).gate());
        CompiledSplitter {
            dense: Arc::new(DenseEvsa::compile(evsa, config)),
            aot: None,
            gate,
            stream: OnceLock::new(),
        }
    }

    /// [`Splitter::compile`] with automatic engine tiering: the splitter
    /// runs on the ahead-of-time premultiplied tables
    /// ([`crate::aot`]) when determinization fits the budget in
    /// `config`, and degrades to the lazy dense engine otherwise
    /// (splits are byte-identical either way; see
    /// [`CompiledSplitter::is_aot`]).
    pub fn compile_tiered(&self, config: crate::aot::AotConfig) -> CompiledSplitter {
        let f = if self.vsa.is_functional() {
            self.vsa.trim()
        } else {
            self.vsa.functionalize()
        };
        let evsa = Arc::new(EVsa::from_functional(&f));
        let gate = Arc::new(PrefilterAnalysis::analyze(&evsa).gate());
        match crate::aot::AotEvsa::compile(evsa.clone(), config) {
            Some(aot) => CompiledSplitter {
                // The AOT compilation embeds a dense compilation; share
                // it rather than compiling the tables twice.
                dense: aot.dense().clone(),
                aot: Some(Arc::new(aot)),
                gate,
                stream: OnceLock::new(),
            },
            None => CompiledSplitter {
                dense: Arc::new(DenseEvsa::compile(evsa, config.dense)),
                aot: None,
                gate,
                stream: OnceLock::new(),
            },
        }
    }

    /// Proposition 5.5: whether the splitter is *disjoint* — for every
    /// document, the produced spans are pairwise disjoint (paper §3).
    ///
    /// Implementation: a product of two synchronized runs of the splitter
    /// over the same document, tracking each run's phase (before / inside
    /// / after its span), whether the two spans provably differ, and
    /// whether an overlap has been witnessed. The splitter is disjoint
    /// iff no accepting product configuration has both flags set.
    pub fn is_disjoint(&self) -> bool {
        let compiled = self.compile();
        let report = two_run_report(compiled.evsa(), compiled.evsa());
        !report.distinct_overlapping
    }

    /// Determinizes the underlying automaton (Prop. 4.4), yielding a
    /// splitter usable with the polynomial-time fast paths (dfVSA
    /// inputs). Worst-case exponential, one-time cost.
    pub fn determinize(&self) -> Splitter {
        Splitter {
            vsa: self.vsa.determinize(),
        }
    }
}

/// Findings of the synchronized two-run product analysis of two unary
/// spanners over the same document (the engine behind Prop. 5.5 and the
/// "highlander" check for annotated splitters, App. E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoRunReport {
    /// Some document admits a run of each automaton producing *distinct,
    /// overlapping* spans.
    pub distinct_overlapping: bool,
    /// Some document admits a run of each automaton producing the *same*
    /// span.
    pub equal_spans: bool,
}

/// Runs the synchronized two-run product of two unary block-normal-form
/// automata over a common (guessed) document, tracking each run's phase
/// (before / inside / after its span), whether the spans provably
/// differ, and whether an overlap has been witnessed.
pub fn two_run_report(e1: &EVsa, e2: &EVsa) -> TwoRunReport {
    assert_eq!(e1.vars().len(), 1, "two-run analysis is for splitters");
    assert_eq!(e2.vars().len(), 1, "two-run analysis is for splitters");

    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    struct Cfg {
        q1: StateId,
        q2: StateId,
        ph1: u8, // 0 before, 1 inside, 2 after
        ph2: u8,
        diff: bool,
        overlap: bool,
    }

    // Applies a block to a phase; returns (new phase, opened, closed).
    fn step_phase(ph: u8, block: &[VarOp]) -> Option<(u8, bool, bool)> {
        let opens = block.iter().any(|op| op.is_open());
        let closes = block.iter().any(|op| !op.is_open());
        let mut p = ph;
        if opens {
            if p != 0 {
                return None;
            }
            p = 1;
        }
        if closes {
            if p != 1 {
                return None;
            }
            p = 2;
        }
        Some((p, opens, closes))
    }

    // Combines two block applications; returns updated flags or None
    // when inconsistent.
    fn apply_blocks(cfg: Cfg, b1: &[VarOp], b2: &[VarOp]) -> Option<Cfg> {
        let (ph1, o1, c1) = step_phase(cfg.ph1, b1)?;
        let (ph2, o2, c2) = step_phase(cfg.ph2, b2)?;
        let mut diff = cfg.diff;
        // Opens (closes) at different boundaries => different spans.
        if o1 != o2 || c1 != c2 {
            diff = true;
        }
        let mut overlap = cfg.overlap;
        // Empty span of one run at a boundary strictly inside the other
        // span (the paper's overlap definition on empty spans).
        if o1 && c1 && ph2 == 1 {
            overlap = true;
        }
        if o2 && c2 && ph1 == 1 {
            overlap = true;
        }
        Some(Cfg {
            q1: cfg.q1,
            q2: cfg.q2,
            ph1,
            ph2,
            diff,
            overlap,
        })
    }

    let start = Cfg {
        q1: e1.start(),
        q2: e2.start(),
        ph1: 0,
        ph2: 0,
        diff: false,
        overlap: false,
    };
    let mut report = TwoRunReport {
        distinct_overlapping: false,
        equal_spans: false,
    };
    let mut seen: HashMap<Cfg, ()> = HashMap::new();
    let mut queue: VecDeque<Cfg> = VecDeque::new();
    seen.insert(start, ());
    queue.push_back(start);
    while let Some(cfg) = queue.pop_front() {
        // Acceptance: both runs take a final block at document end.
        for fb1 in e1.final_blocks(cfg.q1) {
            for fb2 in e2.final_blocks(cfg.q2) {
                if let Some(end) = apply_blocks(cfg, fb1, fb2) {
                    if end.ph1 == 2 && end.ph2 == 2 {
                        if end.diff && end.overlap {
                            report.distinct_overlapping = true;
                        }
                        if !end.diff {
                            report.equal_spans = true;
                        }
                    }
                }
            }
        }
        if report.distinct_overlapping && report.equal_spans {
            return report;
        }
        // Byte steps.
        for (b1, m1, r1) in e1.transitions_from(cfg.q1) {
            for (b2, m2, r2) in e2.transitions_from(cfg.q2) {
                if m1.and(m2).is_empty() {
                    continue;
                }
                let Some(mut next) = apply_blocks(cfg, b1, b2) else {
                    continue;
                };
                // Consuming a byte with both runs inside: overlap.
                if next.ph1 == 1 && next.ph2 == 1 {
                    next.overlap = true;
                }
                next.q1 = *r1;
                next.q2 = *r2;
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(next) {
                    e.insert(());
                    queue.push_back(next);
                }
            }
        }
    }
    report
}

/// A splitter compiled to block normal form, with the dense engine's
/// byte-class tables and lazy-DFA cache as the splitting fast path, plus
/// [`StreamTables`] for incremental (chunk-by-chunk) splitting, built
/// lazily on the first [`CompiledSplitter::stream`] call so batch-only
/// callers never pay the phase-DFA determinization.
#[derive(Debug, Clone)]
pub struct CompiledSplitter {
    dense: Arc<DenseEvsa>,
    /// Ahead-of-time tier (premultiplied tables), present when compiled
    /// via [`Splitter::compile_tiered`] and determinization fit the
    /// budget; `split` prefers it over the lazy dense path.
    aot: Option<Arc<crate::aot::AotEvsa>>,
    /// Document gate from the splitter's prefilter analysis: documents
    /// shorter than the minimum split length (or missing a required
    /// byte) split to nothing without touching the engine.
    gate: Arc<PrefilterGate>,
    stream: OnceLock<Arc<StreamTables>>,
}

impl CompiledSplitter {
    /// The underlying block-normal-form automaton.
    pub fn evsa(&self) -> &EVsa {
        self.dense.evsa()
    }

    /// The dense-engine compilation of the splitter.
    pub fn dense(&self) -> &DenseEvsa {
        &self.dense
    }

    /// The splitter's document gate (see [`crate::prefilter`]).
    pub fn gate(&self) -> &PrefilterGate {
        &self.gate
    }

    /// Whether the ahead-of-time tier is active (see
    /// [`Splitter::compile_tiered`]).
    pub fn is_aot(&self) -> bool {
        self.aot.is_some()
    }

    /// Splits a document (prefilter gate, then the AOT premultiplied
    /// tables when tiered in, else the dense fast path; exact NFA
    /// fallback when the lazy-DFA cache bound is hit).
    pub fn split(&self, doc: &[u8]) -> Vec<Span> {
        if self.gate.rejects(doc) {
            return Vec::new();
        }
        let rel = match &self.aot {
            Some(aot) => aot.eval(doc),
            None => self.dense.eval(doc),
        };
        rel.iter().map(|t| t.get(VarId(0))).collect()
    }

    /// Starts an incremental split of one document stream: feed bytes
    /// chunk by chunk with [`SplitterState::push`] and close the stream
    /// with [`SplitterState::finish`]. Emitted spans are exactly those
    /// of [`CompiledSplitter::split`], in the same ascending order,
    /// without the document ever being materialized (see
    /// [`crate::stream`] for the buffering contract). The tables are
    /// compiled on first use and shared afterwards; each call returns
    /// independent per-stream state.
    pub fn stream(&self) -> SplitterState {
        let tables = self
            .stream
            .get_or_init(|| Arc::new(StreamTables::compile(self.dense.evsa())));
        SplitterState::new(Arc::clone(tables))
    }
}

/// The composed spanner `P_S ∘ S` (Lemma C.1/C.2): evaluates `P_S` on
/// every substring extracted by `S`, with shifted indices. The result is
/// a VSet-automaton of size `O(|P_S| · |S|)` over `SVars(P_S)`.
///
/// Construction (paper Appendix C): three phases — (1) simulate `S`
/// before its variable opens, (2) simulate `S` and `P_S` jointly inside
/// the split, entered on `S`'s `x⊢` with `P_S` at its start state and
/// left on `S`'s `⊣x` from accepting `P_S` states, (3) simulate `S` after
/// the split; accepting where `S` accepts.
pub fn compose(ps: &Vsa, s: &Splitter) -> Vsa {
    let sv = s.vsa();
    let mut out = Vsa::new(ps.vars().clone());

    // Phase-1 and phase-3 states: one per S state.
    let n_s = sv.num_states();
    // out state 0 exists; we lay out: phase1[q] then phase3[q] then
    // phase2 pairs discovered on demand.
    let mut phase1: Vec<StateId> = Vec::with_capacity(n_s);
    let mut phase3: Vec<StateId> = Vec::with_capacity(n_s);
    for q in 0..n_s {
        let id = if q == sv.start() as usize {
            0
        } else {
            out.add_state()
        };
        phase1.push(id);
    }
    // Make sure start maps correctly even if S's start is not 0.
    phase1[sv.start() as usize] = 0;
    for _ in 0..n_s {
        phase3.push(out.add_state());
    }
    let mut phase2: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
    let get2 = |out: &mut Vsa,
                queue: &mut VecDeque<(StateId, StateId)>,
                phase2: &mut HashMap<(StateId, StateId), StateId>,
                q: StateId,
                p: StateId|
     -> StateId {
        *phase2.entry((q, p)).or_insert_with(|| {
            queue.push_back((q, p));
            out.add_state()
        })
    };

    // Phase 1 and 3 transitions; phase-2 entry on x⊢.
    for q in 0..n_s as StateId {
        out.set_final(phase3[q as usize], sv.is_final(q));
        for &(l, r) in sv.transitions_from(q) {
            match l {
                Label::Bytes(m) => {
                    out.add_transition(phase1[q as usize], Label::Bytes(m), phase1[r as usize]);
                    out.add_transition(phase3[q as usize], Label::Bytes(m), phase3[r as usize]);
                }
                Label::Eps => {
                    out.add_transition(phase1[q as usize], Label::Eps, phase1[r as usize]);
                    out.add_transition(phase3[q as usize], Label::Eps, phase3[r as usize]);
                }
                Label::Op(op) => {
                    if op.is_open() {
                        // Enter phase 2 with P_S at its start.
                        let id = get2(&mut out, &mut queue, &mut phase2, r, ps.start());
                        out.add_transition(phase1[q as usize], Label::Eps, id);
                    }
                    // ⊣x handled from phase-2 states below.
                }
            }
        }
    }

    // Phase-2 exploration.
    while let Some((q, p)) = queue.pop_front() {
        let id = phase2[&(q, p)];
        // S's ⊣x: leave the split when P_S accepts.
        for &(l, r) in sv.transitions_from(q) {
            match l {
                Label::Op(op) if !op.is_open() && ps.is_final(p) => {
                    out.add_transition(id, Label::Eps, phase3[r as usize]);
                }
                Label::Eps => {
                    let rid = get2(&mut out, &mut queue, &mut phase2, r, p);
                    out.add_transition(id, Label::Eps, rid);
                }
                _ => {}
            }
        }
        for &(l, r) in ps.transitions_from(p) {
            match l {
                Label::Op(op) => {
                    let rid = get2(&mut out, &mut queue, &mut phase2, q, r);
                    out.add_transition(id, Label::Op(op), rid);
                }
                Label::Eps => {
                    let rid = get2(&mut out, &mut queue, &mut phase2, q, r);
                    out.add_transition(id, Label::Eps, rid);
                }
                Label::Bytes(mp) => {
                    // Both advance on a byte.
                    for &(ls, rs) in sv.transitions_from(q) {
                        if let Label::Bytes(ms) = ls {
                            let m = mp.and(&ms);
                            if m.is_empty() {
                                continue;
                            }
                            let rid = get2(&mut out, &mut queue, &mut phase2, rs, r);
                            out.add_transition(id, Label::Bytes(m), rid);
                        }
                    }
                }
            }
        }
    }

    out.trim()
}

/// Splitter composition `S₁ ∘ S₂` (Lemma 6.1): split by `S₂`, then apply
/// `S₁` within every chunk.
pub fn compose_splitter(s1: &Splitter, s2: &Splitter) -> Splitter {
    Splitter::new(compose(s1.vsa(), s2)).expect("composition of a unary spanner is unary")
}

// ---------------------------------------------------------------------
// Built-in splitter library.
// ---------------------------------------------------------------------

/// Sentence splitter: maximal period-free chunks, delimited by `.`
/// (periods excluded from the span). Disjoint.
pub fn sentences() -> Splitter {
    Splitter::parse(r"(.*\.)?x{[^.]+}(\..*)?").expect("builtin")
}

/// Line splitter: maximal newline-free chunks. Disjoint.
pub fn lines() -> Splitter {
    Splitter::parse("(.*\\n)?x{[^\\n]+}(\\n.*)?").expect("builtin")
}

/// Paragraph splitter: maximal chunks free of blank lines (`\n\n`),
/// not beginning or ending with a newline. Disjoint.
pub fn paragraphs() -> Splitter {
    Splitter::parse("(.*\\n\\n)?x{[^\\n]+(\\n[^\\n]+)*}(\\n\\n.*|\\n?)").expect("builtin")
}

/// HTTP-message splitter: messages in a log are separated by blank
/// lines, exactly like paragraphs (paper §1 and §3.1).
pub fn http_messages() -> Splitter {
    paragraphs()
}

/// The trivial splitter selecting the whole document. Disjoint.
pub fn whole_document() -> Splitter {
    Splitter::parse("x{.*}").expect("builtin")
}

/// Token N-gram splitter: `n` consecutive tokens (`[A-Za-z0-9]+`)
/// separated by single spaces (paper §1, §3). **Not** disjoint for
/// `n > 1`.
pub fn ngrams(n: usize) -> Splitter {
    assert!(n >= 1, "N-grams need n >= 1");
    let tok = "[A-Za-z0-9]+";
    let mut inner = String::from(tok);
    for _ in 1..n {
        inner.push(' ');
        inner.push_str(tok);
    }
    // Token boundaries are any non-alphanumeric byte (or the document
    // edge) — this matches the native splitter and keeps N-gram
    // extraction self-splittable by sentence/line/paragraph splitters.
    let pattern = format!("(.*[^A-Za-z0-9]|)x{{{inner}}}([^A-Za-z0-9].*|)");
    Splitter::parse(&pattern).expect("builtin")
}

/// Bounded token-window splitter: every window of **at most** `n`
/// consecutive tokens, with arbitrary (non-empty, non-alphanumeric)
/// separators between tokens — the "windows of a bounded number N of
/// words" reading of N-grams in the paper's §1. Unlike [`ngrams`]
/// (exactly-`n` windows, single-space separators), this variant also
/// covers documents shorter than `n` tokens, which is what makes the
/// §3.1 claim "a proximity extractor spanning ≤ n tokens is
/// self-splittable by n-grams" hold on *all* documents.
pub fn ngram_windows(n: usize) -> Splitter {
    assert!(n >= 1, "windows need n >= 1");
    let tok = "[A-Za-z0-9]+";
    let sep = "[^A-Za-z0-9]+";
    let mut branches = Vec::new();
    for k in 1..=n {
        let mut inner = String::from(tok);
        for _ in 1..k {
            inner.push_str(sep);
            inner.push_str(tok);
        }
        branches.push(format!("(.*[^A-Za-z0-9]|)x{{{inner}}}([^A-Za-z0-9].*|)"));
    }
    Splitter::parse(&branches.join("|")).expect("builtin")
}

/// Character window splitter: every contiguous `k`-byte window. Not
/// disjoint for `k > 0` on documents longer than `k`.
pub fn char_windows(k: usize) -> Splitter {
    let mut win = Vec::with_capacity(k);
    for _ in 0..k {
        win.push(Ast::Bytes(ByteSet::FULL));
    }
    let ast = Ast::Concat(vec![
        Ast::Star(Box::new(Ast::Bytes(ByteSet::FULL))),
        Ast::Var("x".into(), Box::new(Ast::Concat(win))),
        Ast::Star(Box::new(Ast::Bytes(ByteSet::FULL))),
    ]);
    Splitter::from_rgx(&Rgx::from_ast(ast).expect("builtin")).expect("builtin")
}

/// Fast native splitter implementations, cross-validated against the
/// formal (automaton) splitters by the test suite. These are what the
/// execution engine uses on large corpora.
pub mod native {
    use crate::span::Span;

    /// Maximal runs of bytes different from `delim`.
    pub fn split_by_delim(doc: &[u8], delim: u8) -> Vec<Span> {
        let mut out = Vec::new();
        let mut start = None;
        for (i, &b) in doc.iter().enumerate() {
            if b == delim {
                if let Some(s) = start.take() {
                    out.push(Span::new(s, i));
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(s) = start {
            out.push(Span::new(s, doc.len()));
        }
        out
    }

    /// Native sentence splitter (delimiter `.`), matching
    /// [`super::sentences`].
    pub fn sentences(doc: &[u8]) -> Vec<Span> {
        split_by_delim(doc, b'.')
    }

    /// Native line splitter, matching [`super::lines`].
    pub fn lines(doc: &[u8]) -> Vec<Span> {
        split_by_delim(doc, b'\n')
    }

    /// Native paragraph splitter (blocks separated by blank lines, spans
    /// trimmed of boundary newlines), matching [`super::paragraphs`].
    pub fn paragraphs(doc: &[u8]) -> Vec<Span> {
        let mut out = Vec::new();
        let n = doc.len();
        let mut i = 0;
        while i < n {
            // Skip newlines.
            while i < n && doc[i] == b'\n' {
                i += 1;
            }
            if i >= n {
                break;
            }
            let start = i;
            // Scan to the next blank line or the end.
            let mut end = i;
            while i < n {
                if doc[i] == b'\n' && i + 1 < n && doc[i + 1] == b'\n' {
                    break;
                }
                if doc[i] != b'\n' {
                    end = i + 1;
                }
                i += 1;
            }
            out.push(Span::new(start, end));
        }
        out
    }

    /// Native token N-gram splitter, matching [`super::ngrams`]: spans of
    /// `n` consecutive `[A-Za-z0-9]+` tokens separated by single spaces.
    pub fn ngrams(doc: &[u8], n: usize) -> Vec<Span> {
        let is_tok = |b: u8| b.is_ascii_alphanumeric();
        // Token spans.
        let mut toks: Vec<Span> = Vec::new();
        let mut start = None;
        for (i, &b) in doc.iter().enumerate() {
            if is_tok(b) {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                toks.push(Span::new(s, i));
            }
        }
        if let Some(s) = start {
            toks.push(Span::new(s, doc.len()));
        }
        let mut out = Vec::new();
        if n == 0 || toks.len() < n {
            return out;
        }
        'outer: for w in toks.windows(n) {
            // Consecutive tokens must be separated by exactly one space.
            for pair in w.windows(2) {
                let gap = &doc[pair[0].end..pair[1].start];
                if gap != b" " {
                    continue 'outer;
                }
            }
            out.push(Span::new(w[0].start, w[n - 1].end));
        }
        out
    }

    /// Native bounded token-window splitter, matching
    /// [`super::ngram_windows`]: all windows of 1..=n consecutive
    /// tokens (maximal alphanumeric runs), any separators.
    pub fn ngram_windows(doc: &[u8], n: usize) -> Vec<Span> {
        let is_tok = |b: u8| b.is_ascii_alphanumeric();
        let mut toks: Vec<Span> = Vec::new();
        let mut start = None;
        for (i, &b) in doc.iter().enumerate() {
            if is_tok(b) {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                toks.push(Span::new(s, i));
            }
        }
        if let Some(s) = start {
            toks.push(Span::new(s, doc.len()));
        }
        let mut out = Vec::new();
        for k in 1..=n.min(toks.len()) {
            for w in toks.windows(k) {
                out.push(Span::new(w[0].start, w[k - 1].end));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Native character-window splitter, matching
    /// [`super::char_windows`].
    pub fn char_windows(doc: &[u8], k: usize) -> Vec<Span> {
        if doc.len() < k {
            return Vec::new();
        }
        (0..=doc.len() - k).map(|i| Span::new(i, i + k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_requires_unary() {
        let v = Rgx::parse("x{a}y{b}").unwrap().to_vsa().unwrap();
        assert!(Splitter::new(v).is_err());
        assert!(Splitter::parse("x{a}").is_ok());
    }

    #[test]
    fn sentences_split_and_are_disjoint() {
        let s = sentences();
        let doc = b"Hello world. How are you. Fine";
        let spans = s.split(doc);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].slice(doc), b"Hello world");
        assert_eq!(spans[1].slice(doc), b" How are you");
        assert_eq!(spans[2].slice(doc), b" Fine");
        assert!(s.is_disjoint());
        assert_eq!(spans, native::sentences(doc));
    }

    #[test]
    fn lines_match_native() {
        let s = lines();
        let doc = b"a b\nc\n\nd\n";
        assert_eq!(s.split(doc), native::lines(doc));
        assert!(s.is_disjoint());
    }

    #[test]
    fn paragraphs_match_native() {
        let s = paragraphs();
        for doc in [
            b"one para".as_slice(),
            b"p one\nstill one\n\np two",
            b"a\n\nb\n\nc",
            b"a\n\n\nb",
            b"trailing\n",
            b"x\n\n",
        ] {
            assert_eq!(
                s.split(doc),
                native::paragraphs(doc),
                "doc {:?}",
                String::from_utf8_lossy(doc)
            );
        }
        assert!(s.is_disjoint());
    }

    #[test]
    fn tiered_compile_splits_identically() {
        use crate::aot::AotConfig;
        for s in [sentences(), lines(), paragraphs()] {
            let dense = s.compile();
            let tiered = s.compile_tiered(AotConfig::default());
            for doc in [
                b"Hello world. How are you. Fine".as_slice(),
                b"a b\nc\n\nd\n",
                b"",
                b"...",
            ] {
                assert_eq!(tiered.split(doc), dense.split(doc));
            }
        }
        // A starved budget degrades to dense, with identical splits.
        let s = sentences();
        let starved = s.compile_tiered(AotConfig {
            max_states: 1,
            ..AotConfig::default()
        });
        assert!(!starved.is_aot());
        let doc = b"Hello world. Fine";
        assert_eq!(starved.split(doc), s.compile().split(doc));
    }

    #[test]
    fn ngrams_match_native_and_nondisjoint() {
        let doc = b"one two three four";
        for n in 1..=3 {
            let s = ngrams(n);
            assert_eq!(s.split(doc), native::ngrams(doc, n), "n={n}");
        }
        assert!(ngrams(1).is_disjoint(), "1-grams are disjoint");
        assert!(!ngrams(2).is_disjoint(), "2-grams overlap (paper §3)");
    }

    #[test]
    fn ngram_counts() {
        let doc = b"a bb ccc dddd";
        assert_eq!(ngrams(2).split(doc).len(), 3);
        assert_eq!(ngrams(4).split(doc).len(), 1);
        assert!(ngrams(5).split(doc).is_empty());
    }

    #[test]
    fn ngram_windows_match_native() {
        for doc in [
            b"one two three".as_slice(),
            b"aa.bb cc",
            b"single",
            b"",
            b"..!",
        ] {
            for n in 1..=3 {
                let s = ngram_windows(n);
                assert_eq!(
                    s.split(doc),
                    native::ngram_windows(doc, n),
                    "n={n} doc={:?}",
                    String::from_utf8_lossy(doc)
                );
            }
        }
        assert!(!ngram_windows(2).is_disjoint());
    }

    #[test]
    fn char_windows_overlap() {
        let s = char_windows(2);
        let doc = b"abc";
        assert_eq!(s.split(doc), native::char_windows(doc, 2));
        assert_eq!(s.split(doc).len(), 2);
        assert!(!s.is_disjoint());
    }

    #[test]
    fn whole_document_is_disjoint() {
        let s = whole_document();
        assert_eq!(s.split(b"abc"), vec![Span::new(0, 3)]);
        assert!(s.is_disjoint());
    }

    #[test]
    fn paper_example_5_8_splitter_is_not_disjoint() {
        // S = x{ab}b + ax{bb} on "abb" produces [1,3⟩ and [2,4⟩ (1-based)
        // which overlap.
        let s = Splitter::parse("x{ab}b|a(x{bb})").unwrap();
        let spans = s.split(b"abb");
        assert_eq!(spans, vec![Span::new(0, 2), Span::new(1, 3)]);
        assert!(!s.is_disjoint());
    }

    #[test]
    fn empty_span_overlap_detected() {
        // S selects the whole doc and an empty span in the middle:
        // x{aa} | ax{}a — [0,2) overlaps [1,1).
        let s = Splitter::parse("x{aa}|a(x{})a").unwrap();
        assert!(!s.is_disjoint());
        // But an empty span at the *end* boundary of another span does
        // not overlap (paper's strict inequality): x{a}a | a x{} a.
        let s2 = Splitter::parse("x{a}a|a(x{})a").unwrap();
        assert!(s2.is_disjoint());
    }

    #[test]
    fn compose_shifts_results() {
        // P_S = y{b}, S = sentences; P = P_S ∘ S finds 'b' only relative
        // to sentence starts... here: locate 'b' at any position within a
        // chunk: use y over chunk content.
        let ps = Rgx::parse(".*y{b}.*").unwrap().to_vsa().unwrap();
        let s = sentences();
        let composed = compose(&ps, &s);
        let doc = b"ab.ba";
        let rel = eval(&composed, doc);
        let spans: Vec<Span> = rel.iter().map(|t| t.get(VarId(0))).collect();
        assert_eq!(spans, vec![Span::new(1, 2), Span::new(3, 4)]);
    }

    #[test]
    fn compose_definition_agrees_pointwise() {
        // (P_S ∘ S)(d) = union over s in S(d) of shifted P_S(d_s).
        let ps = Rgx::parse("y{[ab]+}").unwrap().to_vsa().unwrap();
        let s = sentences();
        let composed = compose(&ps, &s);
        for doc in [b"ab.ba.aa".as_slice(), b"ab", b"", b"..", b"a.b."] {
            let direct = eval(&composed, doc);
            let mut expected = Vec::new();
            for sp in s.split(doc) {
                for t in eval(&ps, sp.slice(doc)).iter() {
                    expected.push(t.shift(sp));
                }
            }
            let expected = crate::tuple::SpanRelation::from_tuples(expected);
            assert_eq!(direct, expected, "doc {:?}", String::from_utf8_lossy(doc));
        }
    }

    #[test]
    fn compose_splitter_pages_then_paragraphs() {
        // Splitting lines inside sentences == composing the splitters.
        let inner = lines();
        let outer = sentences();
        let combined = compose_splitter(&inner, &outer);
        let doc = b"a\nb.c\nd";
        let mut expected = Vec::new();
        for sp in outer.split(doc) {
            for inner_sp in inner.split(sp.slice(doc)) {
                expected.push(inner_sp.shift(sp));
            }
        }
        expected.sort();
        expected.dedup();
        assert_eq!(combined.split(doc), expected);
    }

    #[test]
    fn compiled_splitter_matches() {
        let s = sentences();
        let c = s.compile();
        let doc = b"one. two. three";
        assert_eq!(s.split(doc), c.split(doc));
    }

    #[test]
    fn compiled_splitter_gate_short_circuits() {
        // Sentences need at least one non-period byte; the empty
        // document and all-period documents are gate-rejected, with
        // results identical to the ungated path.
        let c = sentences().compile();
        assert!(c.gate().rejects(b""));
        assert_eq!(c.split(b""), sentences().split(b""));
        assert_eq!(c.split(b"..."), sentences().split(b"..."));
        // char_windows(3) has min split length 3.
        let w = char_windows(3).compile();
        assert!(w.gate().rejects(b"ab"));
        for doc in [b"ab".as_slice(), b"abc", b"abcd"] {
            assert_eq!(w.split(doc), char_windows(3).split(doc));
        }
        assert!(w.split(b"ab").is_empty());
    }
}
