//! Endpoint logic: JSON request → registry/runner calls → JSON response.
//!
//! Routes (all bodies and responses are JSON):
//!
//! | Route | Request | Response |
//! |---|---|---|
//! | `POST /spanners` | `{"pattern", "engine"?}` | `{"id", "cached", "vars"}` |
//! | `POST /splitters` | `{"pattern"}` or `{"builtin"}` | `{"id", "cached"}` |
//! | `POST /fleets` | `{"members": [ids]}` | `{"id", "cached", "members"}` |
//! | `POST /certify` | `{"spanner"\|"fleet", "splitter"}` | `{"holds", "cached", ...}` |
//! | `POST /extract` | `{"spanner"\|"fleet", "splitter", "docs", "unchecked"?}` | `{"relations", "stats"}` |
//! | `GET /stats` | — | full service statistics |
//! | `GET /healthz` | — | `{"ok": true}` |
//!
//! `/extract` refuses (`409`) when the requested pair is not certified
//! self-split-correct — per-segment evaluation would change the
//! extraction semantics — unless the request opts out with
//! `"unchecked": true`. Certification happens transparently on first
//! use and is cached thereafter (see [`crate::registry::Registry`]).

use crate::config::ServerConfig;
use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::registry::{hex_id, parse_hex_id, Registry, SplitterSpec};

use splitc_core::cache::CachedVerdict;
use splitc_core::Verdict;
use splitc_exec::{CorpusRunner, CorpusRunnerConfig, Engine, EvalPool, FleetRunner};
use splitc_spanner::{SpanRelation, VarTable};

use std::sync::Arc;
use std::time::Instant;

/// Shared state of a running service: registries, the evaluation pool,
/// metrics, and configuration.
#[derive(Debug)]
pub struct ServiceState {
    /// Artifact registries + certification cache.
    pub registry: Registry,
    /// The long-lived evaluation worker pool shared by all requests.
    pub pool: Arc<EvalPool>,
    /// Request/latency/execution metrics.
    pub metrics: Metrics,
    /// The validated configuration the server was started with.
    pub config: ServerConfig,
}

impl ServiceState {
    /// Builds the state for a validated config (the pool is started
    /// here, sized to `config.workers`).
    pub fn new(config: ServerConfig) -> ServiceState {
        ServiceState {
            registry: Registry::new(),
            pool: Arc::new(EvalPool::new(config.workers)),
            metrics: Metrics::new(),
            config,
        }
    }

    /// The runner configuration every `/extract` uses: the shared
    /// pool's width, the configured batch size, and default queueing.
    fn runner_config(&self) -> CorpusRunnerConfig {
        CorpusRunnerConfig {
            workers: self.config.workers,
            batch_bytes: self.config.batch_bytes,
            ..CorpusRunnerConfig::default()
        }
    }
}

/// Dispatches one request, recording latency and status metrics.
pub fn handle(state: &ServiceState, req: &Request) -> Response {
    let start = Instant::now();
    let response = route(state, req);
    let histogram = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/spanners" | "/splitters" | "/fleets") => Some(&state.metrics.register_latency),
        ("POST", "/certify") => Some(&state.metrics.certify_latency),
        ("POST", "/extract") => Some(&state.metrics.extract_latency),
        ("GET", "/stats") => Some(&state.metrics.stats_latency),
        _ => None,
    };
    if let Some(h) = histogram {
        h.record(start.elapsed());
    }
    state.metrics.count_status(response.status);
    response
}

fn route(state: &ServiceState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/spanners") => with_body(req, |body| register_spanner(state, body)),
        ("POST", "/splitters") => with_body(req, |body| register_splitter(state, body)),
        ("POST", "/fleets") => with_body(req, |body| register_fleet(state, body)),
        ("POST", "/certify") => with_body(req, |body| certify(state, body)),
        ("POST", "/extract") => with_body(req, |body| extract(state, body)),
        ("GET", "/stats") => stats(state),
        ("GET", "/healthz") => Response::json(200, Json::obj(vec![("ok", Json::Bool(true))])),
        ("POST" | "GET", _) => error(404, format!("no route {} {}", req.method, req.path)),
        _ => error(405, format!("method {} not supported", req.method)),
    }
}

/// Builds a JSON error response.
pub fn error(status: u16, message: impl Into<String>) -> Response {
    Response::json(
        status,
        Json::obj(vec![("error", Json::Str(message.into()))]),
    )
}

fn with_body(req: &Request, f: impl FnOnce(&Json) -> Response) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error(400, "body is not valid UTF-8"),
    };
    match Json::parse(text) {
        Ok(body) => f(&body),
        Err(e) => error(400, format!("invalid JSON body: {e}")),
    }
}

fn require_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, Response> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| error(400, format!("missing string field {key:?}")))
}

fn require_id(body: &Json, key: &str) -> Result<u64, Response> {
    let text = require_str(body, key)?;
    parse_hex_id(text).ok_or_else(|| error(400, format!("{key:?} is not a 16-hex-digit id")))
}

fn register_spanner(state: &ServiceState, body: &Json) -> Response {
    let pattern = match require_str(body, "pattern") {
        Ok(p) => p,
        Err(r) => return r,
    };
    let engine = match body.get("engine").and_then(Json::as_str) {
        None => Engine::default(),
        Some(name) => match name.parse::<Engine>() {
            Ok(e) => e,
            Err(e) => return error(400, e),
        },
    };
    match state.registry.register_spanner(pattern, engine) {
        Err(e) => error(400, e),
        Ok((entry, cached)) => Response::json(
            200,
            Json::obj(vec![
                ("id", Json::str(hex_id(entry.id))),
                ("cached", Json::Bool(cached)),
                ("engine", Json::str(entry.engine.name())),
                // The tier compile-time tiering actually chose: equals
                // the engine except when an `aot` request exceeded the
                // determinization budget and degraded to `dense`.
                ("tier", Json::str(entry.exec.tier().name())),
                (
                    "vars",
                    Json::Arr(
                        entry
                            .vsa
                            .vars()
                            .names()
                            .iter()
                            .map(|n| Json::str(n.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
    }
}

fn register_splitter(state: &ServiceState, body: &Json) -> Response {
    let spec = match (
        body.get("pattern").and_then(Json::as_str),
        body.get("builtin").and_then(Json::as_str),
    ) {
        (Some(p), None) => SplitterSpec::Pattern(p.to_string()),
        (None, Some(b)) => SplitterSpec::Builtin(b.to_string()),
        _ => return error(400, "exactly one of \"pattern\" or \"builtin\" is required"),
    };
    match state.registry.register_splitter(&spec) {
        Err(e) => error(400, e),
        Ok((entry, cached)) => Response::json(
            200,
            Json::obj(vec![
                ("id", Json::str(hex_id(entry.id))),
                ("cached", Json::Bool(cached)),
                ("disjoint", Json::Bool(entry.splitter.is_disjoint())),
            ]),
        ),
    }
}

fn register_fleet(state: &ServiceState, body: &Json) -> Response {
    let members = match body.get("members").and_then(Json::as_arr) {
        Some(m) => m,
        None => return error(400, "missing array field \"members\""),
    };
    let mut ids = Vec::with_capacity(members.len());
    for m in members {
        match m.as_str().and_then(parse_hex_id) {
            Some(id) => ids.push(id),
            None => return error(400, "fleet members must be 16-hex-digit spanner ids"),
        }
    }
    match state.registry.register_fleet(&ids) {
        Err(e) => error(400, e),
        Ok((entry, cached)) => Response::json(
            200,
            Json::obj(vec![
                ("id", Json::str(hex_id(entry.id))),
                ("cached", Json::Bool(cached)),
                ("members", Json::num(entry.member_ids.len() as u32)),
                ("engine", Json::str(entry.engine.name())),
            ]),
        ),
    }
}

/// Renders one cached verdict as JSON fields.
fn verdict_json(v: &CachedVerdict) -> Json {
    match v {
        Ok(Verdict::Holds) => Json::obj(vec![("verdict", Json::str("holds"))]),
        Ok(Verdict::Fails(ce)) => Json::obj(vec![
            ("verdict", Json::str("fails")),
            (
                "counterexample",
                Json::str(String::from_utf8_lossy(&ce.doc).into_owned()),
            ),
            ("reason", Json::str(ce.reason.clone())),
        ]),
        Err(e) => Json::obj(vec![
            ("verdict", Json::str("error")),
            ("detail", Json::str(e.to_string())),
        ]),
    }
}

fn certify(state: &ServiceState, body: &Json) -> Response {
    let splitter_id = match require_id(body, "splitter") {
        Ok(id) => id,
        Err(r) => return r,
    };
    let splitter = match state.registry.splitter(splitter_id) {
        Some(s) => s,
        None => return error(404, format!("unknown splitter {}", hex_id(splitter_id))),
    };
    match (body.get("spanner"), body.get("fleet")) {
        (Some(_), None) => {
            let spanner_id = match require_id(body, "spanner") {
                Ok(id) => id,
                Err(r) => return r,
            };
            let spanner = match state.registry.spanner(spanner_id) {
                Some(s) => s,
                None => return error(404, format!("unknown spanner {}", hex_id(spanner_id))),
            };
            let (verdict, cached) = state.registry.certify_spanner(&spanner, &splitter);
            let mut fields = vec![
                (
                    "holds".to_string(),
                    Json::Bool(matches!(&verdict, Ok(v) if v.holds())),
                ),
                ("cached".to_string(), Json::Bool(cached)),
            ];
            if let Json::Obj(pairs) = verdict_json(&verdict) {
                fields.extend(pairs);
            }
            Response::json(200, Json::Obj(fields))
        }
        (None, Some(_)) => {
            let fleet_id = match require_id(body, "fleet") {
                Ok(id) => id,
                Err(r) => return r,
            };
            let fleet = match state.registry.fleet(fleet_id) {
                Some(f) => f,
                None => return error(404, format!("unknown fleet {}", hex_id(fleet_id))),
            };
            let (verdicts, cached) = state.registry.certify_fleet(&fleet, &splitter);
            let holds = verdicts.iter().all(|v| matches!(v, Ok(x) if x.holds()));
            let members: Vec<Json> = fleet
                .member_ids
                .iter()
                .zip(&verdicts)
                .map(|(id, v)| {
                    let mut obj = vec![("spanner".to_string(), Json::str(hex_id(*id)))];
                    if let Json::Obj(pairs) = verdict_json(v) {
                        obj.extend(pairs);
                    }
                    Json::Obj(obj)
                })
                .collect();
            Response::json(
                200,
                Json::obj(vec![
                    ("holds", Json::Bool(holds)),
                    ("cached", Json::Bool(cached)),
                    ("members", Json::Arr(members)),
                ]),
            )
        }
        _ => error(400, "exactly one of \"spanner\" or \"fleet\" is required"),
    }
}

/// Renders a relation as an array of `{var: [start, end]}` tuples.
/// Deterministic: tuples are in the relation's canonical sorted order,
/// variables in [`VarTable`] order.
fn relation_json(relation: &SpanRelation, vars: &VarTable) -> Json {
    Json::Arr(
        relation
            .iter()
            .map(|tuple| {
                Json::Obj(
                    vars.names()
                        .iter()
                        .zip(tuple.spans())
                        .map(|(name, span)| {
                            (
                                name.clone(),
                                Json::Arr(vec![
                                    Json::num(span.start as u32),
                                    Json::num(span.end as u32),
                                ]),
                            )
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

fn extract(state: &ServiceState, body: &Json) -> Response {
    let splitter_id = match require_id(body, "splitter") {
        Ok(id) => id,
        Err(r) => return r,
    };
    let splitter = match state.registry.splitter(splitter_id) {
        Some(s) => s,
        None => return error(404, format!("unknown splitter {}", hex_id(splitter_id))),
    };
    let docs: Vec<&str> = match body.get("docs").and_then(Json::as_arr) {
        Some(items) => {
            let mut docs = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(s) => docs.push(s),
                    None => return error(400, "\"docs\" must be an array of strings"),
                }
            }
            docs
        }
        None => return error(400, "missing array field \"docs\""),
    };
    let doc_bytes: Vec<&[u8]> = docs.iter().map(|d| d.as_bytes()).collect();
    let unchecked = body
        .get("unchecked")
        .and_then(Json::as_bool)
        .unwrap_or(false);

    match (body.get("spanner"), body.get("fleet")) {
        (Some(_), None) => {
            let spanner_id = match require_id(body, "spanner") {
                Ok(id) => id,
                Err(r) => return r,
            };
            let spanner = match state.registry.spanner(spanner_id) {
                Some(s) => s,
                None => return error(404, format!("unknown spanner {}", hex_id(spanner_id))),
            };
            if !unchecked {
                let (verdict, _) = state.registry.certify_spanner(&spanner, &splitter);
                if !matches!(&verdict, Ok(v) if v.holds()) {
                    return not_split_correct(&verdict);
                }
            }
            let runner = CorpusRunner::with_pool(
                spanner.exec.clone(),
                splitter.compiled.clone(),
                state.runner_config(),
                state.pool.clone(),
            );
            let result = runner.run_slices(&doc_bytes);
            state.metrics.record_corpus(&result.stats);
            let vars = spanner.vsa.vars();
            Response::json(
                200,
                Json::obj(vec![
                    (
                        "relations",
                        Json::Arr(
                            result
                                .relations
                                .iter()
                                .map(|r| relation_json(r, vars))
                                .collect(),
                        ),
                    ),
                    (
                        "stats",
                        Json::obj(vec![
                            ("docs", Json::num(result.stats.docs as u32)),
                            ("segments", Json::num(result.stats.segments as u32)),
                            (
                                "segment_bytes",
                                Json::Num(result.stats.segment_bytes as f64),
                            ),
                            ("batches", Json::num(result.stats.batches as u32)),
                        ]),
                    ),
                ]),
            )
        }
        (None, Some(_)) => {
            let fleet_id = match require_id(body, "fleet") {
                Ok(id) => id,
                Err(r) => return r,
            };
            let fleet = match state.registry.fleet(fleet_id) {
                Some(f) => f,
                None => return error(404, format!("unknown fleet {}", hex_id(fleet_id))),
            };
            if !unchecked {
                let (verdicts, _) = state.registry.certify_fleet(&fleet, &splitter);
                if let Some(bad) = verdicts.iter().find(|v| !matches!(v, Ok(x) if x.holds())) {
                    return not_split_correct(bad);
                }
            }
            let runner = FleetRunner::with_pool(
                fleet.fleet.clone(),
                splitter.compiled.clone(),
                state.runner_config(),
                state.pool.clone(),
            );
            let result = runner.run_slices(&doc_bytes);
            state.metrics.record_fleet(&result.stats);
            Response::json(
                200,
                Json::obj(vec![
                    (
                        "relations",
                        Json::Arr(
                            result
                                .relations
                                .iter()
                                .map(|per_doc| {
                                    Json::Arr(
                                        per_doc
                                            .iter()
                                            .enumerate()
                                            .map(|(m, r)| relation_json(r, fleet.vsas[m].vars()))
                                            .collect(),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "stats",
                        Json::obj(vec![
                            ("docs", Json::num(result.stats.docs as u32)),
                            ("segments", Json::num(result.stats.segments as u32)),
                            (
                                "segment_bytes",
                                Json::Num(result.stats.segment_bytes as f64),
                            ),
                            ("batches", Json::num(result.stats.batches as u32)),
                            ("dispatches", Json::Num(result.stats.dispatches as f64)),
                            (
                                "gate_rejected",
                                Json::Num(result.stats.gate_rejected as f64),
                            ),
                            (
                                "scan_rejected",
                                Json::Num(result.stats.scan_rejected as f64),
                            ),
                        ]),
                    ),
                ]),
            )
        }
        _ => error(400, "exactly one of \"spanner\" or \"fleet\" is required"),
    }
}

/// Runs one extraction completely offline — no server, no shared pool,
/// per-run spawned worker threads — and renders the relations with the
/// *same* JSON encoding as `/extract`. This is the differential
/// reference for the end-to-end harness (`scripts/server_smoke.sh`
/// compares server output byte-for-byte against this).
///
/// Request shape: `{"pattern": ...}` (spanner) or `{"patterns": [...]}`
/// (fleet), plus `"engine"?`, `"splitter"` or `"splitter_builtin"`, and
/// `"docs"`.
pub fn offline_extract(body: &Json) -> Result<Json, String> {
    let spec = match (
        body.get("splitter").and_then(Json::as_str),
        body.get("splitter_builtin").and_then(Json::as_str),
    ) {
        (Some(p), None) => SplitterSpec::Pattern(p.to_string()),
        (None, Some(b)) => SplitterSpec::Builtin(b.to_string()),
        _ => return Err("exactly one of \"splitter\" or \"splitter_builtin\" is required".into()),
    };
    let registry = Registry::new();
    let (splitter, _) = registry.register_splitter(&spec)?;
    let engine = match body.get("engine").and_then(Json::as_str) {
        None => Engine::default(),
        Some(name) => name.parse::<Engine>()?,
    };
    let docs: Vec<Vec<u8>> = body
        .get("docs")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"docs\"")?
        .iter()
        .map(|d| {
            d.as_str()
                .map(|s| s.as_bytes().to_vec())
                .ok_or_else(|| "\"docs\" must be an array of strings".to_string())
        })
        .collect::<Result<_, _>>()?;
    let doc_slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();

    match (body.get("pattern"), body.get("patterns")) {
        (Some(_), None) => {
            let pattern = body
                .get("pattern")
                .and_then(Json::as_str)
                .ok_or("\"pattern\" must be a string")?;
            let (spanner, _) = registry.register_spanner(pattern, engine)?;
            let runner = CorpusRunner::new(
                spanner.exec.clone(),
                splitter.compiled.clone(),
                CorpusRunnerConfig::default(),
            );
            let result = runner.run_slices(&doc_slices);
            Ok(Json::obj(vec![(
                "relations",
                Json::Arr(
                    result
                        .relations
                        .iter()
                        .map(|r| relation_json(r, spanner.vsa.vars()))
                        .collect(),
                ),
            )]))
        }
        (None, Some(_)) => {
            let patterns = body
                .get("patterns")
                .and_then(Json::as_arr)
                .ok_or("\"patterns\" must be an array")?;
            let mut ids = Vec::with_capacity(patterns.len());
            for p in patterns {
                let p = p
                    .as_str()
                    .ok_or("\"patterns\" must be an array of strings")?;
                let (entry, _) = registry.register_spanner(p, engine)?;
                ids.push(entry.id);
            }
            let (fleet, _) = registry.register_fleet(&ids)?;
            let runner = FleetRunner::new(
                fleet.fleet.clone(),
                splitter.compiled.clone(),
                CorpusRunnerConfig::default(),
            );
            let result = runner.run_slices(&doc_slices);
            Ok(Json::obj(vec![(
                "relations",
                Json::Arr(
                    result
                        .relations
                        .iter()
                        .map(|per_doc| {
                            Json::Arr(
                                per_doc
                                    .iter()
                                    .enumerate()
                                    .map(|(m, r)| relation_json(r, fleet.vsas[m].vars()))
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            )]))
        }
        _ => Err("exactly one of \"pattern\" or \"patterns\" is required".into()),
    }
}

fn not_split_correct(verdict: &CachedVerdict) -> Response {
    let detail = match verdict {
        Ok(Verdict::Fails(ce)) => format!("not self-split-correct: {}", ce.reason),
        Ok(Verdict::Holds) => unreachable!("only called on failures"),
        Err(e) => format!("certification failed: {e}"),
    };
    Response::json(
        409,
        Json::obj(vec![
            ("error", Json::str(detail)),
            (
                "hint",
                Json::str("pass \"unchecked\": true to extract anyway (changes semantics)"),
            ),
        ]),
    )
}

fn stats(state: &ServiceState) -> Response {
    let (spanners, splitters, fleets) = state.registry.counts();
    let compile = state.registry.compile_stats();
    let cert = state.registry.cert_stats();
    let pool = state.pool.stats();
    let antichain = splitc_automata::cumulative_stats();
    // Per-entry engine/tier listing: the tier differs from the engine
    // exactly when an `aot` request fell back to the lazy dense tier.
    let entries = Json::Arr(
        state
            .registry
            .spanner_entries()
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("id", Json::str(hex_id(e.id))),
                    ("engine", Json::str(e.engine.name())),
                    ("tier", Json::str(e.exec.tier().name())),
                ])
            })
            .collect(),
    );
    let mut doc = vec![
        (
            "registry".to_string(),
            Json::obj(vec![
                ("spanners", Json::num(spanners as u32)),
                ("splitters", Json::num(splitters as u32)),
                ("fleets", Json::num(fleets as u32)),
                ("entries", entries),
                (
                    "compile_cache",
                    Json::obj(vec![
                        ("hits", Json::Num(compile.hits as f64)),
                        ("misses", Json::Num(compile.misses as f64)),
                    ]),
                ),
                (
                    "cert_cache",
                    Json::obj(vec![
                        ("hits", Json::Num(cert.hits as f64)),
                        ("misses", Json::Num(cert.misses as f64)),
                        ("entries", Json::num(cert.entries as u32)),
                    ]),
                ),
            ]),
        ),
        (
            "pool".to_string(),
            Json::obj(vec![
                ("workers", Json::num(state.pool.workers() as u32)),
                ("submitted", Json::Num(pool.submitted as f64)),
                ("completed", Json::Num(pool.completed as f64)),
                ("panicked", Json::Num(pool.panicked as f64)),
            ]),
        ),
        (
            "antichain".to_string(),
            Json::obj(vec![
                ("runs", Json::Num(antichain.runs as f64)),
                ("explored", Json::Num(antichain.explored as f64)),
                ("pruned", Json::Num(antichain.pruned as f64)),
                ("subsets", Json::Num(antichain.subsets as f64)),
            ]),
        ),
    ];
    if let Json::Obj(pairs) = state.metrics.to_json() {
        doc.extend(pairs);
    }
    Response::json(200, Json::Obj(doc))
}
