//! 256-bit byte sets.
//!
//! Transitions of our VSet-automata carry *sets* of bytes rather than
//! single bytes, so that realistic spanners over Σ = all 256 byte values
//! (e.g. "any byte that is not a period") are represented by single edges.
//! Decision procedures compress the sets into *byte classes* (see
//! [`crate::ext`]) before handing automata to the generic substrate.

use std::fmt;

/// A set of byte values, stored as a 256-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub const EMPTY: ByteSet = ByteSet { bits: [0; 4] };

    /// The full set Σ (all 256 byte values).
    pub const FULL: ByteSet = ByteSet {
        bits: [u64::MAX; 4],
    };

    /// Singleton set.
    pub fn single(b: u8) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        s.insert(b);
        s
    }

    /// Set from an inclusive range.
    pub fn range(lo: u8, hi: u8) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        let mut b = lo;
        loop {
            s.insert(b);
            if b == hi {
                break;
            }
            b += 1;
        }
        s
    }

    /// Set from explicit bytes.
    pub fn from_bytes(bytes: &[u8]) -> ByteSet {
        let mut s = ByteSet::EMPTY;
        for &b in bytes {
            s.insert(b);
        }
        s
    }

    /// Inserts a byte.
    #[inline]
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Set complement.
    #[inline]
    pub fn complement(&self) -> ByteSet {
        ByteSet {
            bits: [!self.bits[0], !self.bits[1], !self.bits[2], !self.bits[3]],
        }
    }

    /// Intersection.
    #[inline]
    pub fn and(&self, other: &ByteSet) -> ByteSet {
        ByteSet {
            bits: [
                self.bits[0] & other.bits[0],
                self.bits[1] & other.bits[1],
                self.bits[2] & other.bits[2],
                self.bits[3] & other.bits[3],
            ],
        }
    }

    /// Union.
    #[inline]
    pub fn or(&self, other: &ByteSet) -> ByteSet {
        ByteSet {
            bits: [
                self.bits[0] | other.bits[0],
                self.bits[1] | other.bits[1],
                self.bits[2] | other.bits[2],
                self.bits[3] | other.bits[3],
            ],
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// Number of bytes in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the member bytes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).filter_map(move |b| {
            let b = b as u8;
            if self.contains(b) {
                Some(b)
            } else {
                None
            }
        })
    }

    /// Smallest member, if any (useful for witness materialization).
    pub fn first(&self) -> Option<u8> {
        self.iter().next()
    }
}

impl fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ByteSet::FULL {
            return write!(f, "Σ");
        }
        if self.len() > 128 {
            return write!(f, "Σ∖{:?}", self.complement());
        }
        write!(f, "{{")?;
        let mut first = true;
        for b in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{:?}", b as char)?;
            } else {
                write!(f, "0x{b:02x}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = ByteSet::EMPTY;
        assert!(s.is_empty());
        s.insert(b'a');
        s.insert(b'z');
        assert!(s.contains(b'a'));
        assert!(!s.contains(b'b'));
        assert_eq!(s.len(), 2);
        assert_eq!(s.first(), Some(b'a'));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![b'a', b'z']);
    }

    #[test]
    fn ranges_and_complement() {
        let digits = ByteSet::range(b'0', b'9');
        assert_eq!(digits.len(), 10);
        let not_digits = digits.complement();
        assert!(!not_digits.contains(b'5'));
        assert!(not_digits.contains(b'a'));
        assert_eq!(digits.and(&not_digits), ByteSet::EMPTY);
        assert_eq!(digits.or(&not_digits), ByteSet::FULL);
    }

    #[test]
    fn full_range_wraps_safely() {
        let all = ByteSet::range(0, 255);
        assert_eq!(all, ByteSet::FULL);
        assert_eq!(all.len(), 256);
    }

    #[test]
    fn intersection_union() {
        let a = ByteSet::from_bytes(b"abc");
        let b = ByteSet::from_bytes(b"bcd");
        assert_eq!(a.and(&b), ByteSet::from_bytes(b"bc"));
        assert_eq!(a.or(&b), ByteSet::from_bytes(b"abcd"));
    }
}
