//! The paper's debugging motivation (§1): a developer pairs `host` and
//! `date` headers, accidentally allowing them to come from *different*
//! HTTP messages. The system warns that — unlike other programs over
//! the same log — the extractor is **not** splittable by messages,
//! exposing the bug; the fixed version is certified and then run
//! distributed.
//!
//! ```sh
//! cargo run --release --example http_log_debugging
//! ```

use split_correctness::prelude::*;
use split_correctness::textgen;
use splitc_textgen::spanners;
use std::sync::Arc;

fn main() {
    let messages = splitters::http_messages();

    // The buggy extractor: host ... date with any lines (including blank
    // ones) in between.
    let buggy = spanners::host_date_buggy();
    println!("checking the host/date extractor against the message splitter…");
    match self_splittable(&buggy, &messages).unwrap() {
        Verdict::Fails(cex) => {
            println!("⚠ NOT splittable by HTTP messages — likely a bug!");
            println!(
                "  witness log:\n---\n{}\n---",
                String::from_utf8_lossy(&cex.doc)
            );
            println!(
                "  the pair {} crosses a message boundary",
                cex.tuple.display(buggy.vars())
            );
        }
        Verdict::Holds => println!("splittable (unexpected)"),
    }

    // The fixed extractor: host and date within one message.
    let fixed = spanners::host_date_fixed();
    match self_splittable(&fixed, &messages).unwrap() {
        Verdict::Holds => println!("✓ fixed extractor is self-splittable by messages"),
        Verdict::Fails(cex) => println!("still broken: {cex}"),
    }

    // The request-line extractor from §3.1 is splittable too, and the
    // system can therefore parallelize it over messages.
    let request_lines = spanners::request_line_extractor();
    assert!(self_splittable(&request_lines, &messages).unwrap().holds());
    let log = textgen::http_log(5_000, 17);
    let spanner = ExecSpanner::compile(&request_lines);
    let split: SplitFn = Arc::new(native_splitters::paragraphs);
    let seq = evaluate_sequential(&spanner, &log);
    let par = evaluate_split(&spanner, &split, &log, 5);
    assert_eq!(seq, par);
    println!(
        "extracted {} request lines from a {} KiB log (parallel = sequential ✓)",
        seq.len(),
        log.len() / 1024
    );
}
