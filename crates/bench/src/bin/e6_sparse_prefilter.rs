//! E6 — literal prefilter + skip-loop on match-sparse corpora.
//!
//! PR 2's dense lazy DFA still inspects every byte of every document
//! through a table lookup; real workloads are match-sparse, and
//! production regex engines win an order of magnitude there with
//! literal prefilters. This benchmark measures exactly that gap for a
//! number extractor over sparse Wikipedia-like text
//! (`splitc_textgen::sparse_number_corpus`) with the dense engine vs
//! the prefiltered engine (`splitc_spanner::prefilter`: analysis-gated
//! rejection + SWAR skip-loop):
//!
//! * **collection** (the gated rows, bench `e6_sparse_prefilter`) — a
//!   pre-parallel collection of small documents evaluated with
//!   [`splitc_exec::evaluate_many`]; most documents contain no digit at
//!   all, so the prefilter gate answers them with one SWAR scan. This
//!   isolates the evaluation stage the prefilter accelerates.
//! * **stream** (rows `e6_sparse_prefilter/stream`) — the full
//!   streaming [`splitc_exec::CorpusRunner`] pipeline over sharded
//!   sparse documents split to sentences, reporting the
//!   `PrefilterStats` surfaced in `CorpusStats` (gate rejections per
//!   segment + skip-loop bytes).
//!
//! Engines must produce byte-identical relations — asserted on every
//! run. One invocation emits both engines' rows (the `--engine` flag is
//! accepted-and-ignored for harness uniformity, like
//! `t3_certification_scaling`); the CI gate requires prefilter over
//! dense by the configured floor on the collection rows.

use splitc_bench::{bench_json, ms, scaled, time_best, x, Table};
use splitc_exec::{evaluate_many, CorpusRunner, CorpusRunnerConfig, Engine, ExecSpanner};
use splitc_spanner::splitter;
use splitc_spanner::vsa::Vsa;
use splitc_textgen::{sparse_number_shards, CorpusConfig};

/// The workload extractor: maximal-digit-run tokens, self-splittable by
/// sentences (same spanner as E5, on corpora where it rarely fires).
fn number_extractor() -> Vsa {
    splitc_spanner::rgx::Rgx::parse("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)")
        .unwrap()
        .to_vsa()
        .unwrap()
}

fn main() {
    let workers: usize = std::env::var("SC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let p = number_extractor();
    let s = splitter::sentences();
    let verdict = splitc_core::self_splittable(&p, &s).unwrap();
    assert!(
        verdict.holds(),
        "number extractor must be sentence-self-splittable"
    );
    let dense = ExecSpanner::compile_with(&p, Engine::Dense);
    let pre = ExecSpanner::compile_with(&p, Engine::Prefilter);

    // ------------------------------------------------------------------
    // Collection workload: many small documents, most entirely barren.
    // ------------------------------------------------------------------
    let n_docs = scaled(2048).max(64);
    let doc_cfg = CorpusConfig {
        target_bytes: 2048,
        seed: 0x59A25E,
        ..Default::default()
    };
    // One digit-bearing sentence in 256: at ~15 sentences per document,
    // roughly one document in 17 contains a match.
    let owned = sparse_number_shards(n_docs, &doc_cfg, 256);
    let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
    let total_bytes: usize = refs.iter().map(|d| d.len()).sum();
    println!(
        "E6: number extraction over {n_docs} sparse ~2 KiB documents \
         ({:.1} MiB total; workers: {workers})",
        total_bytes as f64 / (1 << 20) as f64,
    );

    let (dense_rels, dense_wall) = time_best(3, || evaluate_many(&dense, &refs, workers));
    let dense_tuples: usize = dense_rels.iter().map(|r| r.len()).sum();
    bench_json(
        "e6_sparse_prefilter",
        Engine::Dense.name(),
        total_bytes,
        n_docs as f64,
        dense_wall,
        dense_tuples,
    );
    let (pre_rels, pre_wall) = time_best(3, || evaluate_many(&pre, &refs, workers));
    let pre_tuples: usize = pre_rels.iter().map(|r| r.len()).sum();
    bench_json(
        "e6_sparse_prefilter",
        Engine::Prefilter.name(),
        total_bytes,
        n_docs as f64,
        pre_wall,
        pre_tuples,
    );
    assert_eq!(dense_rels, pre_rels, "engines must agree on the collection");
    assert!(dense_tuples > 0, "the sparse corpus still has needles");
    let matching = dense_rels.iter().filter(|r| !r.is_empty()).count();

    let mib = total_bytes as f64 / (1 << 20) as f64;
    let mut table = Table::new(
        &format!("E6 — sparse collection, number extraction at {workers} workers"),
        &["engine", "wall ms", "MiB/s", "speedup vs dense"],
    );
    table.row(&[
        "dense".into(),
        ms(dense_wall),
        format!("{:.1}", mib / dense_wall.as_secs_f64().max(1e-9)),
        x(1.0),
    ]);
    table.row(&[
        "prefilter".into(),
        ms(pre_wall),
        format!("{:.1}", mib / pre_wall.as_secs_f64().max(1e-9)),
        x(dense_wall.as_secs_f64() / pre_wall.as_secs_f64().max(1e-9)),
    ]);
    table.print();
    println!(
        "{pre_tuples} tuples; {matching}/{n_docs} documents contain a match \
         — the rest are answered by one SWAR scan each",
    );

    // ------------------------------------------------------------------
    // Streaming pipeline: sharded sparse corpus through CorpusRunner.
    // ------------------------------------------------------------------
    let shards = 8;
    let per_doc = scaled(1 << 20);
    let stream_cfg = CorpusConfig {
        target_bytes: per_doc,
        seed: 0x59A25F,
        ..Default::default()
    };
    let owned = sparse_number_shards(shards, &stream_cfg, 64);
    let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
    let stream_bytes: usize = refs.iter().map(|d| d.len()).sum();
    let run = |spanner: &ExecSpanner| {
        let runner = CorpusRunner::new(
            spanner.clone(),
            s.compile(),
            CorpusRunnerConfig {
                workers,
                ..Default::default()
            },
        );
        time_best(2, || runner.run_slices(&refs))
    };
    let (dense_stream, dense_stream_wall) = run(&dense);
    bench_json(
        "e6_sparse_prefilter/stream",
        Engine::Dense.name(),
        stream_bytes,
        shards as f64,
        dense_stream_wall,
        dense_stream.relations.iter().map(|r| r.len()).sum(),
    );
    let (pre_stream, pre_stream_wall) = run(&pre);
    bench_json(
        "e6_sparse_prefilter/stream",
        Engine::Prefilter.name(),
        stream_bytes,
        shards as f64,
        pre_stream_wall,
        pre_stream.relations.iter().map(|r| r.len()).sum(),
    );
    assert_eq!(
        dense_stream.relations, pre_stream.relations,
        "engines must agree on the streamed corpus"
    );
    let pf = pre_stream.stats.prefilter;
    println!(
        "\nstreaming pipeline ({shards} shards x {:.1} MiB, split to sentences): \
         dense {} ms, prefilter {} ms ({})",
        per_doc as f64 / (1 << 20) as f64,
        ms(dense_stream_wall),
        ms(pre_stream_wall),
        x(dense_stream_wall.as_secs_f64() / pre_stream_wall.as_secs_f64().max(1e-9)),
    );
    println!(
        "prefilter stats: {} candidates ({} false) of {} segments, \
         {} bytes skipped of {stream_bytes} ({:.1}%)",
        pf.candidates,
        pf.false_candidates,
        pre_stream.stats.segments,
        pf.bytes_skipped,
        100.0 * pf.bytes_skipped as f64 / stream_bytes as f64,
    );
    println!(
        "\nShape check: on the collection rows the prefilter gate answers\n\
         barren documents with one SWAR scan instead of a per-byte DFA walk\n\
         (the CI gate asserts the floor; the recorded quiet-host factor\n\
         lives in BENCH_pr5.json). The streaming rows show the same engines\n\
         behind the splitter pipeline, where PrefilterStats surface in\n\
         CorpusStats."
    );
}
