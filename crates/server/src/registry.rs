//! Content-hash-keyed registries of compiled artifacts plus the
//! certification cache.
//!
//! Registration is idempotent and deduplicating: the id of a spanner is
//! the FNV-1a hash of `engine ++ pattern` (a splitter's of its source
//! spec, a fleet's of its member ids), so re-registering byte-identical
//! artifacts — from any connection, in any order — returns the already
//! compiled entry and counts a compile-cache hit. Certification
//! verdicts are memoized in a [`CertCache`] keyed by
//! `(spanner id, splitter id)`; a fleet certifies its *uncached*
//! members in one [`certify_many`] batch (sharing that engine's
//! composition memo and fast-path routing) and seeds the cache with the
//! outcomes.

use splitc_core::cache::{content_hash, CachedVerdict, CertCache, CertCacheStats};
use splitc_core::split_correct;
use splitc_exec::{certify_many, CertifyConfig, CorpusHandle, Engine, ExecSpanner, Fleet};
use splitc_spanner::splitter as splitters;
use splitc_spanner::splitter::CompiledSplitter;
use splitc_spanner::{Splitter, Vsa};

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Renders a registry id in the wire format (16 hex digits). Ids are
/// strings on the wire because JSON numbers cannot carry 64 bits
/// exactly.
pub fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a wire-format id.
pub fn parse_hex_id(text: &str) -> Option<u64> {
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// A registered, compiled spanner.
#[derive(Debug)]
pub struct SpannerEntry {
    /// Content hash of `(engine, pattern)` — the wire id.
    pub id: u64,
    /// The source regex formula.
    pub pattern: String,
    /// The engine it was compiled for.
    pub engine: Engine,
    /// The parsed VSA (kept for certification).
    pub vsa: Vsa,
    /// The compiled evaluator.
    pub exec: ExecSpanner,
}

/// A registered, compiled splitter.
#[derive(Debug)]
pub struct SplitterEntry {
    /// Content hash of the source spec — the wire id.
    pub id: u64,
    /// The source spec (`pattern:...` or `builtin:...`).
    pub spec: String,
    /// The parsed splitter (kept for certification).
    pub splitter: Splitter,
    /// The compiled streaming splitter.
    pub compiled: CompiledSplitter,
}

/// A registered fleet of spanners compiled for fused evaluation.
#[derive(Debug)]
pub struct FleetEntry {
    /// Content hash of the ordered member ids — the wire id.
    pub id: u64,
    /// Member spanner ids, in fleet order.
    pub member_ids: Vec<u64>,
    /// Member VSAs, in fleet order (kept for certification).
    pub vsas: Vec<Vsa>,
    /// The engine every member was compiled for.
    pub engine: Engine,
    /// The fused evaluator.
    pub fleet: Arc<Fleet>,
}

/// A server-maintained corpus resource: shard bytes plus their
/// maintained segmentation, bound to the splitter it was split under.
///
/// Unlike the compiled-artifact registries, corpora are **named by the
/// client** (ids are resource names, not content hashes — the same
/// name is re-`PUT` to replace) and **mutable**: `POST
/// /corpus/{id}/delta` edits the handle in place, resplitting only the
/// dirty window (see [`CorpusHandle`]). The per-entry mutex serializes
/// mutation and extraction of one corpus; distinct corpora proceed in
/// parallel.
#[derive(Debug)]
pub struct CorpusEntry {
    /// The client-chosen resource name.
    pub id: String,
    /// Id of the registered splitter the corpus is maintained under —
    /// extraction by corpus id certifies against *this* splitter.
    pub splitter_id: u64,
    /// The maintained shards + segmentations.
    pub handle: Mutex<CorpusHandle>,
}

/// Whether `id` is a legal corpus resource name: 1–64 characters from
/// `[A-Za-z0-9_-]` (it appears in a URL path, so no separators).
pub fn valid_corpus_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// How a splitter is specified on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitterSpec {
    /// A unary spanner given as a regex formula.
    Pattern(String),
    /// One of the built-in splitters by name.
    Builtin(String),
}

impl SplitterSpec {
    /// The canonical string hashed into the splitter's id.
    fn canonical(&self) -> String {
        match self {
            SplitterSpec::Pattern(p) => format!("pattern:{p}"),
            SplitterSpec::Builtin(b) => format!("builtin:{b}"),
        }
    }

    fn build(&self) -> Result<Splitter, String> {
        match self {
            SplitterSpec::Pattern(p) => Splitter::parse(p),
            SplitterSpec::Builtin(name) => match name.as_str() {
                "sentences" => Ok(splitters::sentences()),
                "lines" => Ok(splitters::lines()),
                "paragraphs" => Ok(splitters::paragraphs()),
                "http_messages" => Ok(splitters::http_messages()),
                "whole_document" => Ok(splitters::whole_document()),
                other => Err(format!(
                    "unknown builtin splitter {other:?} (expected sentences|lines|paragraphs|http_messages|whole_document)"
                )),
            },
        }
    }
}

/// Hit/miss counters of the compile cache, one pair per artifact kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileCacheStats {
    /// Registrations answered by an existing entry.
    pub hits: u64,
    /// Registrations that compiled a new entry.
    pub misses: u64,
}

/// The server's shared state: three artifact registries and the
/// certification cache.
#[derive(Debug, Default)]
pub struct Registry {
    spanners: Mutex<HashMap<u64, Arc<SpannerEntry>>>,
    splitters: Mutex<HashMap<u64, Arc<SplitterEntry>>>,
    fleets: Mutex<HashMap<u64, Arc<FleetEntry>>>,
    corpora: Mutex<HashMap<String, Arc<CorpusEntry>>>,
    cert: CertCache,
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or finds) a spanner compiled from `pattern` for
    /// `engine`. The boolean is `true` when the entry already existed.
    pub fn register_spanner(
        &self,
        pattern: &str,
        engine: Engine,
    ) -> Result<(Arc<SpannerEntry>, bool), String> {
        let id = content_hash(format!("spanner:{}:{pattern}", engine.name()).as_bytes());
        if let Some(entry) = self.spanners.lock().get(&id) {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((entry.clone(), true));
        }
        // Compile outside the lock; first insert wins on a race.
        let rgx = splitc_spanner::Rgx::parse(pattern).map_err(|e| e.to_string())?;
        let vsa = rgx.to_vsa().map_err(|e| e.to_string())?;
        let exec = ExecSpanner::compile_with(&vsa, engine);
        let entry = Arc::new(SpannerEntry {
            id,
            pattern: pattern.to_string(),
            engine,
            vsa,
            exec,
        });
        let stored = self.spanners.lock().entry(id).or_insert(entry).clone();
        self.compile_misses.fetch_add(1, Ordering::Relaxed);
        Ok((stored, false))
    }

    /// Registers (or finds) a splitter. The boolean is `true` when the
    /// entry already existed.
    pub fn register_splitter(
        &self,
        spec: &SplitterSpec,
    ) -> Result<(Arc<SplitterEntry>, bool), String> {
        let canonical = spec.canonical();
        let id = content_hash(canonical.as_bytes());
        if let Some(entry) = self.splitters.lock().get(&id) {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((entry.clone(), true));
        }
        let splitter = spec.build()?;
        let compiled = splitter.compile();
        let entry = Arc::new(SplitterEntry {
            id,
            spec: canonical,
            splitter,
            compiled,
        });
        let stored = self.splitters.lock().entry(id).or_insert(entry).clone();
        self.compile_misses.fetch_add(1, Ordering::Relaxed);
        Ok((stored, false))
    }

    /// Registers (or finds) a fleet over already-registered member
    /// spanners. All members must share one engine (the fused pass
    /// compiles one shared byte partition). The boolean is `true` when
    /// the entry already existed.
    pub fn register_fleet(&self, member_ids: &[u64]) -> Result<(Arc<FleetEntry>, bool), String> {
        if member_ids.is_empty() {
            return Err("a fleet needs at least one member".into());
        }
        let mut key = String::from("fleet");
        for m in member_ids {
            key.push(':');
            key.push_str(&hex_id(*m));
        }
        let id = content_hash(key.as_bytes());
        if let Some(entry) = self.fleets.lock().get(&id) {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((entry.clone(), true));
        }
        let mut vsas = Vec::with_capacity(member_ids.len());
        let mut engine = None;
        for m in member_ids {
            let member = self
                .spanner(*m)
                .ok_or_else(|| format!("unknown spanner {}", hex_id(*m)))?;
            match engine {
                None => engine = Some(member.engine),
                Some(e) if e == member.engine => {}
                Some(e) => {
                    return Err(format!(
                        "fleet members must share one engine ({} vs {})",
                        e.name(),
                        member.engine.name()
                    ))
                }
            }
            vsas.push(member.vsa.clone());
        }
        let engine = engine.expect("non-empty fleet");
        let fleet = Arc::new(Fleet::compile(&vsas, engine));
        let entry = Arc::new(FleetEntry {
            id,
            member_ids: member_ids.to_vec(),
            vsas,
            engine,
            fleet,
        });
        let stored = self.fleets.lock().entry(id).or_insert(entry).clone();
        self.compile_misses.fetch_add(1, Ordering::Relaxed);
        Ok((stored, false))
    }

    /// Creates or replaces the corpus resource named `id`, split under
    /// `splitter_id`. Returns the stored entry plus whether an existing
    /// corpus was replaced. `PUT` semantics: the whole resource is the
    /// request's shard set; incremental changes go through deltas.
    pub fn put_corpus(
        &self,
        id: &str,
        splitter_id: u64,
        handle: CorpusHandle,
    ) -> (Arc<CorpusEntry>, bool) {
        let entry = Arc::new(CorpusEntry {
            id: id.to_string(),
            splitter_id,
            handle: Mutex::new(handle),
        });
        let replaced = self
            .corpora
            .lock()
            .insert(id.to_string(), entry.clone())
            .is_some();
        (entry, replaced)
    }

    /// Looks a corpus resource up by name.
    pub fn corpus(&self, id: &str) -> Option<Arc<CorpusEntry>> {
        self.corpora.lock().get(id).cloned()
    }

    /// Deletes the corpus resource named `id`; `false` if it did not
    /// exist.
    pub fn remove_corpus(&self, id: &str) -> bool {
        self.corpora.lock().remove(id).is_some()
    }

    /// Corpus resources currently held.
    pub fn corpus_count(&self) -> usize {
        self.corpora.lock().len()
    }

    /// Looks a spanner up by id.
    pub fn spanner(&self, id: u64) -> Option<Arc<SpannerEntry>> {
        self.spanners.lock().get(&id).cloned()
    }

    /// Looks a splitter up by id.
    pub fn splitter(&self, id: u64) -> Option<Arc<SplitterEntry>> {
        self.splitters.lock().get(&id).cloned()
    }

    /// Looks a fleet up by id.
    pub fn fleet(&self, id: u64) -> Option<Arc<FleetEntry>> {
        self.fleets.lock().get(&id).cloned()
    }

    /// Certifies `P = P ∘ S` (self-split-correctness — the property
    /// that licenses per-segment parallel evaluation) for a registered
    /// pair, through the cache. The boolean is `true` on a cache hit.
    pub fn certify_spanner(
        &self,
        spanner: &SpannerEntry,
        splitter: &SplitterEntry,
    ) -> (CachedVerdict, bool) {
        self.cert.get_or_certify((spanner.id, splitter.id), || {
            split_correct(&spanner.vsa, &spanner.vsa, &splitter.splitter)
        })
    }

    /// Certifies every member of a fleet against `splitter`, batching
    /// all *uncached* members through one [`certify_many`] call (shared
    /// composition memo, Thm 5.7 fast-path routing) and seeding the
    /// cache with the outcomes. Returns per-member verdicts in fleet
    /// order plus whether every member was already cached.
    pub fn certify_fleet(
        &self,
        fleet: &FleetEntry,
        splitter: &SplitterEntry,
    ) -> (Vec<CachedVerdict>, bool) {
        let mut verdicts: Vec<Option<CachedVerdict>> = Vec::new();
        let mut missing: Vec<usize> = Vec::new();
        for (i, member_id) in fleet.member_ids.iter().enumerate() {
            match self.cert.get((*member_id, splitter.id)) {
                Some(v) => verdicts.push(Some(v)),
                None => {
                    verdicts.push(None);
                    missing.push(i);
                }
            }
        }
        let all_cached = missing.is_empty();
        if !all_cached {
            let vsas: Vec<Vsa> = missing.iter().map(|&i| fleet.vsas[i].clone()).collect();
            let pairs: Vec<(usize, usize)> = (0..vsas.len()).map(|j| (j, j)).collect();
            let result = certify_many(&vsas, &splitter.splitter, &pairs, &CertifyConfig::default());
            for (j, outcome) in result.outcomes.into_iter().enumerate() {
                let i = missing[j];
                let key = (fleet.member_ids[i], splitter.id);
                verdicts[i] = Some(self.cert.insert(key, outcome.verdict));
            }
        }
        (
            verdicts
                .into_iter()
                .map(|v| v.expect("every member resolved"))
                .collect(),
            all_cached,
        )
    }

    /// Certification-cache counters.
    pub fn cert_stats(&self) -> CertCacheStats {
        self.cert.stats()
    }

    /// Compile-cache counters.
    pub fn compile_stats(&self) -> CompileCacheStats {
        CompileCacheStats {
            hits: self.compile_hits.load(Ordering::Relaxed),
            misses: self.compile_misses.load(Ordering::Relaxed),
        }
    }

    /// All registered spanner entries, sorted by id for deterministic
    /// listings (`/stats` reports each entry's requested engine and the
    /// tier compile-time tiering actually chose).
    pub fn spanner_entries(&self) -> Vec<Arc<SpannerEntry>> {
        let mut entries: Vec<Arc<SpannerEntry>> = self.spanners.lock().values().cloned().collect();
        entries.sort_by_key(|e| e.id);
        entries
    }

    /// `(spanners, splitters, fleets)` currently registered.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.spanners.lock().len(),
            self.splitters.lock().len(),
            self.fleets.lock().len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_are_content_addressed() {
        let r = Registry::new();
        let (a, cached_a) = r.register_spanner(".*x{a+}.*", Engine::Dense).unwrap();
        let (b, cached_b) = r.register_spanner(".*x{a+}.*", Engine::Dense).unwrap();
        assert!(!cached_a && cached_b);
        assert_eq!(a.id, b.id);
        assert_eq!(parse_hex_id(&hex_id(a.id)), Some(a.id));
        assert_eq!(parse_hex_id("zz"), None);
        // Same pattern, different engine: a different artifact.
        let (c, _) = r.register_spanner(".*x{a+}.*", Engine::Nfa).unwrap();
        assert_ne!(a.id, c.id);
        let stats = r.compile_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert!(r.register_spanner("x{", Engine::Dense).is_err());
    }

    #[test]
    fn splitter_specs() {
        let r = Registry::new();
        let (s1, _) = r
            .register_splitter(&SplitterSpec::Builtin("sentences".into()))
            .unwrap();
        let (s2, cached) = r
            .register_splitter(&SplitterSpec::Builtin("sentences".into()))
            .unwrap();
        assert!(cached);
        assert_eq!(s1.id, s2.id);
        assert!(r
            .register_splitter(&SplitterSpec::Builtin("bogus".into()))
            .is_err());
        let (p, _) = r
            .register_splitter(&SplitterSpec::Pattern(r"(.*,)?x{[^,]+}(,.*)?".into()))
            .unwrap();
        assert_ne!(p.id, s1.id);
        assert!(r
            .register_splitter(&SplitterSpec::Pattern("x{".into()))
            .is_err());
    }

    #[test]
    fn certification_caches_across_spanner_and_fleet_paths() {
        let r = Registry::new();
        let (sp, _) = r.register_spanner(".*x{a+}.*", Engine::Dense).unwrap();
        let (sl, _) = r
            .register_splitter(&SplitterSpec::Builtin("sentences".into()))
            .unwrap();
        let (v, cached) = r.certify_spanner(&sp, &sl);
        assert!(!cached);
        assert!(v.unwrap().holds());
        let (_, cached) = r.certify_spanner(&sp, &sl);
        assert!(cached);

        // A fleet containing the already-certified member plus a fresh
        // one: only the fresh member goes through certify_many.
        let (sp2, _) = r.register_spanner(".*y{b+}.*", Engine::Dense).unwrap();
        let (fl, _) = r.register_fleet(&[sp.id, sp2.id]).unwrap();
        let misses_before = r.cert_stats().misses;
        let (verdicts, all_cached) = r.certify_fleet(&fl, &sl);
        assert!(!all_cached);
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts.iter().all(|v| v.as_ref().unwrap().holds()));
        assert_eq!(r.cert_stats().misses, misses_before + 1, "one new member");
        let (_, all_cached) = r.certify_fleet(&fl, &sl);
        assert!(all_cached, "second fleet certification is all hits");
    }

    #[test]
    fn corpus_store_is_named_and_mutable() {
        let r = Registry::new();
        let (sl, _) = r
            .register_splitter(&SplitterSpec::Builtin("sentences".into()))
            .unwrap();
        let handle = CorpusHandle::from_shards(
            sl.compiled.clone(),
            vec![b"one one. two.".to_vec(), b"three.".to_vec()],
        );
        let (entry, replaced) = r.put_corpus("wiki", sl.id, handle);
        assert!(!replaced);
        assert_eq!(entry.handle.lock().num_shards(), 2);
        assert_eq!(r.corpus("wiki").unwrap().splitter_id, sl.id);
        assert_eq!(r.corpus_count(), 1);
        // Re-PUT replaces the whole resource under the same name.
        let (_, replaced) = r.put_corpus("wiki", sl.id, CorpusHandle::new(sl.compiled.clone()));
        assert!(replaced);
        assert_eq!(r.corpus("wiki").unwrap().handle.lock().num_shards(), 0);
        // Deltas through the stored entry are visible to later lookups.
        let entry = r.corpus("wiki").unwrap();
        entry.handle.lock().push_shard(b"added.".to_vec());
        assert_eq!(r.corpus("wiki").unwrap().handle.lock().num_shards(), 1);
        assert!(r.remove_corpus("wiki"));
        assert!(!r.remove_corpus("wiki"), "already gone");
        assert!(r.corpus("wiki").is_none());

        for ok in ["a", "wiki-2_dump", &"x".repeat(64)] {
            assert!(valid_corpus_id(ok), "{ok:?}");
        }
        for bad in ["", "a/b", "a b", "é", &"x".repeat(65)] {
            assert!(!valid_corpus_id(bad), "{bad:?}");
        }
    }

    #[test]
    fn fleet_registration_validates_members() {
        let r = Registry::new();
        assert!(r.register_fleet(&[]).is_err());
        assert!(r.register_fleet(&[42]).is_err(), "unknown member");
        let (a, _) = r.register_spanner(".*x{a+}.*", Engine::Dense).unwrap();
        let (b, _) = r.register_spanner(".*x{b+}.*", Engine::Nfa).unwrap();
        assert!(r.register_fleet(&[a.id, b.id]).is_err(), "mixed engines");
        let (fl, cached) = r.register_fleet(&[a.id]).unwrap();
        assert!(!cached);
        assert_eq!(fl.member_ids, vec![a.id]);
        let (_, cached) = r.register_fleet(&[a.id]).unwrap();
        assert!(cached);
    }
}
