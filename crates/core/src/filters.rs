//! Regular preconditions: splitters with filter (paper §7.2).
//!
//! A splitter with filter `S[L]` behaves like `S` on documents in the
//! regular language `L` and returns nothing elsewhere. The key insight
//! (Lemma 7.5) is that the minimal useful filter is
//! `L_P = {d | P(d) ≠ ∅}`: whenever `P = P_S ∘ S[L]` for *some* regular
//! `L`, already `P = P_S ∘ S[L_P]`. Deciding split-correctness /
//! self-splittability / splittability *with regular filter* therefore
//! reduces to the unfiltered problems against the filtered splitter
//! `S[L_P]` (Theorems 7.6 and 7.7), which is itself an ordinary
//! splitter (`S ⋈ π_∅ P`).

use crate::error::CertError;
use crate::split_correctness::{split_correct, Verdict};
use crate::splittability::{splittable, SplittabilityVerdict};
use crate::util;
use splitc_automata::nfa::StateId;
use splitc_spanner::ext::ExtAlphabet;
use splitc_spanner::splitter::Splitter;
use splitc_spanner::vars::{VarOp, VarTable};
use splitc_spanner::vsa::Vsa;

/// A splitter with a regular filter `S[L]` (paper §7.2).
#[derive(Debug, Clone)]
pub struct FilteredSplitter {
    splitter: Splitter,
    filter: Vsa,
}

impl FilteredSplitter {
    /// Creates `S[L]`; `filter` must be a variable-free (Boolean)
    /// spanner representing the language `L`.
    pub fn new(splitter: Splitter, filter: Vsa) -> Result<FilteredSplitter, String> {
        if !filter.vars().is_empty() {
            return Err("the filter must be a variable-free regular language".into());
        }
        Ok(FilteredSplitter { splitter, filter })
    }

    /// The underlying splitter.
    pub fn splitter(&self) -> &Splitter {
        &self.splitter
    }

    /// The filter language as a Boolean spanner.
    pub fn filter(&self) -> &Vsa {
        &self.filter
    }

    /// Materializes `S[L]` as an ordinary splitter (splitters with
    /// filter are not more powerful than splitters — §7.2): restricts
    /// the splitter's ref-word language to documents in `L`.
    pub fn to_splitter(&self) -> Splitter {
        let s_vsa = self.splitter.vsa();
        let table = s_vsa.vars().clone();
        let mut masks = s_vsa.byte_masks();
        masks.extend(self.filter.byte_masks());
        let ext = ExtAlphabet::from_masks(table.clone(), &masks);
        let ns = util::raw_ext_nfa(s_vsa, &ext).remove_eps();
        // Filter with self-loops for the splitter variable's operations.
        let mut f = util::raw_ext_nfa(&lift_filter_vars(&self.filter, &table), &ext);
        let x = table.iter().next().expect("splitters are unary");
        for q in 0..f.num_states() as StateId {
            f.add_transition(q, ext.op_sym(VarOp::Open(x)), q);
            f.add_transition(q, ext.op_sym(VarOp::Close(x)), q);
        }
        let product = ns.intersect(&f.remove_eps()).trim();
        let vsa = Vsa::from_ext_nfa(&product, &ext);
        Splitter::new(vsa).expect("filtering preserves arity")
    }

    /// Evaluates `S[L]` on a document.
    pub fn split(&self, doc: &[u8]) -> Vec<splitc_spanner::span::Span> {
        if splitc_spanner::eval::eval(&self.filter, doc).is_empty() {
            Vec::new()
        } else {
            self.splitter.split(doc)
        }
    }
}

/// The filter `L` may be built over a different variable table; lift it
/// to the splitter's table without introducing operations.
fn lift_filter_vars(filter: &Vsa, table: &VarTable) -> Vsa {
    // A variable-free automaton can adopt any table by construction: we
    // rebuild it transition-for-transition over the new table.
    let mut out = Vsa::new(table.clone());
    let mut map = vec![0; filter.num_states()];
    for (q, slot) in map.iter_mut().enumerate() {
        *slot = if q == filter.start() as usize {
            0
        } else {
            out.add_state()
        };
    }
    for q in 0..filter.num_states() as StateId {
        out.set_final(map[q as usize], filter.is_final(q));
        for &(l, r) in filter.transitions_from(q) {
            out.add_transition(map[q as usize], l, map[r as usize]);
        }
    }
    out
}

/// The minimal filter language `L_P = {d | P(d) ≠ ∅}` as a Boolean
/// spanner (`π_∅ P`).
pub fn lp_language(p: &Vsa) -> Vsa {
    let (empty_table, map) = p.vars().project(&[]);
    let erased = p.rename_vars(empty_table, &map);
    erased.functionalize()
}

/// Split-correctness with regular filter (Theorem 7.6): is there a
/// regular language `L` such that `P = P_S ∘ S[L]`? By Lemma 7.5 it
/// suffices to test `L = L_P`. The verdict carries the minimal filter
/// when the property holds.
pub fn split_correct_with_filter(
    p: &Vsa,
    ps: &Vsa,
    s: &Splitter,
) -> Result<FilterVerdict, CertError> {
    let lp = lp_language(p);
    let filtered = FilteredSplitter::new(s.clone(), lp.clone())?;
    Ok(match split_correct(p, ps, &filtered.to_splitter())? {
        Verdict::Holds => FilterVerdict::HoldsWith { filter: lp },
        Verdict::Fails(cex) => FilterVerdict::Fails(cex),
    })
}

/// Self-splittability with regular filter (Theorem 7.6).
pub fn self_splittable_with_filter(p: &Vsa, s: &Splitter) -> Result<FilterVerdict, CertError> {
    split_correct_with_filter(p, p, s)
}

/// Splittability with regular filter for disjoint splitters
/// (Theorem 7.7).
pub fn splittable_with_filter(p: &Vsa, s: &Splitter) -> Result<SplittabilityVerdict, CertError> {
    let lp = lp_language(p);
    let filtered = FilteredSplitter::new(s.clone(), lp)?;
    let fs = filtered.to_splitter();
    splittable(p, &fs)
}

/// Outcome of a with-filter check; the positive case returns the minimal
/// filter `L_P` that realizes it.
#[derive(Debug, Clone)]
pub enum FilterVerdict {
    /// The property holds with the given (minimal, Lemma 7.5) filter.
    HoldsWith {
        /// `L_P` as a Boolean spanner.
        filter: Vsa,
    },
    /// No regular filter makes the property hold.
    Fails(crate::split_correctness::CounterExample),
}

impl FilterVerdict {
    /// Whether a filter exists.
    pub fn holds(&self) -> bool {
        matches!(self, FilterVerdict::HoldsWith { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::eval::eval;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::span::Span;
    use splitc_spanner::splitter;

    fn vsa(p: &str) -> Vsa {
        Rgx::parse(p).unwrap().to_vsa().unwrap()
    }

    #[test]
    fn lp_language_is_nonempty_output_language() {
        let p = vsa(".*x{ab}.*");
        let lp = lp_language(&p);
        assert!(!eval(&lp, b"zabz").is_empty());
        assert!(eval(&lp, b"zz").is_empty());
    }

    #[test]
    fn filtered_splitter_materializes() {
        // Sentences filtered to documents that contain "ab".
        let s = splitter::sentences();
        let f = FilteredSplitter::new(s.clone(), vsa(".*ab.*")).unwrap();
        let mat = f.to_splitter();
        let doc_yes = b"ab.cd";
        let doc_no = b"cd.ef";
        assert_eq!(mat.split(doc_yes), s.split(doc_yes));
        assert_eq!(mat.split(doc_yes), f.split(doc_yes));
        assert!(mat.split(doc_no).is_empty());
        assert!(f.split(doc_no).is_empty());
    }

    #[test]
    fn filter_must_be_variable_free() {
        let s = splitter::sentences();
        assert!(FilteredSplitter::new(s, vsa("x{a}")).is_err());
    }

    #[test]
    fn with_filter_succeeds_where_plain_fails() {
        // §7.2 motivation: P extracts the token of *single-token*
        // documents. It is not self-splittable by sentences (per-chunk
        // evaluation also fires on multi-sentence documents), but it is
        // with the minimal filter L_P = single-token documents.
        let p = vsa("x{[a-z]+}");
        let s = splitter::sentences();
        assert!(!crate::self_splittable(&p, &s).unwrap().holds());
        let v = self_splittable_with_filter(&p, &s).unwrap();
        match v {
            FilterVerdict::HoldsWith { filter } => {
                assert!(!eval(&filter, b"abc").is_empty());
                assert!(eval(&filter, b"ab.cd").is_empty());
            }
            FilterVerdict::Fails(cex) => panic!("filter should exist: {cex}"),
        }
    }

    #[test]
    fn splittable_with_filter_for_disjoint_splitters() {
        // Theorem 7.7: splittability with regular filter, disjoint S.
        let p = vsa("x{[a-z]+}");
        let s = splitter::sentences();
        assert!(s.is_disjoint());
        // Without a filter, P is not splittable by sentences (the
        // canonical spanner would fire on every chunk of every doc).
        match splittable(&p, &s).unwrap() {
            SplittabilityVerdict::NotSplittable(_) => {}
            SplittabilityVerdict::Splittable { .. } => {
                panic!("P should not be plainly splittable")
            }
        }
        // With the L_P filter it becomes splittable (indeed
        // self-splittable, witnessed by the canonical spanner).
        match splittable_with_filter(&p, &s).unwrap() {
            SplittabilityVerdict::Splittable { witness } => {
                let rel = eval(&witness, b"abc");
                assert_eq!(rel.len(), 1);
            }
            SplittabilityVerdict::NotSplittable(cex) => {
                panic!("should be splittable with filter: {cex}")
            }
        }
    }

    #[test]
    fn lemma_7_5_minimality() {
        // If P = P_S ∘ S[L] then L_P ⊆ L and P = P_S ∘ S[L_P]: validate
        // the second half on an instance where a filter exists.
        let p = vsa("x{a+}!");
        let s = splitter::whole_document();
        let lp = lp_language(&p);
        let filtered = FilteredSplitter::new(s, lp).unwrap().to_splitter();
        assert!(crate::split_correct(&p, &p, &filtered).unwrap().holds());
        // And the filtered splitter outputs nothing outside L_P.
        assert!(filtered.split(b"aaa").is_empty());
        assert_eq!(filtered.split(b"aa!"), vec![Span::new(0, 3)]);
    }
}
