//! Streaming document splitting with bounded byte buffering.
//!
//! [`StreamingSplitter`] wraps the incremental splitter simulation of
//! [`splitc_spanner::stream`] with the byte management a corpus pipeline
//! needs: it consumes a document **chunk by chunk**, hands out finished
//! [`Segment`]s (absolute span + owned segment bytes, ready to ship to a
//! worker), and discards consumed input eagerly. The retained window is
//! `[low watermark, current position)` — for the built-in disjoint
//! splitters that is the segment currently being read plus the incoming
//! chunk, **independent of document length**, which is what lets
//! [`crate::corpus::CorpusRunner`] process corpora far larger than
//! memory.

use splitc_spanner::span::Span;
use splitc_spanner::splitter::CompiledSplitter;
use splitc_spanner::stream::SplitterState;

/// One split segment of a streamed document: its span in the document's
/// absolute coordinates plus an owned copy of the segment bytes (the
/// streaming buffer the span pointed into is reclaimed eagerly, so the
/// bytes must be detached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// The split span, in absolute document offsets.
    pub span: Span,
    /// The bytes `doc[span.start..span.end]`.
    pub bytes: Vec<u8>,
}

/// Incremental splitter over a byte stream.
///
/// Feed chunks with [`StreamingSplitter::push`]; each call returns the
/// segments completed by that chunk, in ascending `(start, end)` order —
/// exactly the segments `CompiledSplitter::split` would produce on the
/// materialized document (a property the differential proptest suite
/// asserts over random chunk boundaries). Close the stream with
/// [`StreamingSplitter::finish`].
#[derive(Debug)]
pub struct StreamingSplitter {
    state: SplitterState,
    /// Bytes `[base, state.pos())` of the stream still referenced by
    /// unresolved candidates or by segments not yet handed out.
    buf: Vec<u8>,
    /// Stream offset of `buf[0]`.
    base: usize,
    /// Largest buffer size observed (bytes), for memory accounting.
    peak_buffered: usize,
}

impl StreamingSplitter {
    /// Starts streaming one document through `splitter`.
    pub fn new(splitter: &CompiledSplitter) -> StreamingSplitter {
        StreamingSplitter {
            state: splitter.stream(),
            buf: Vec::new(),
            base: 0,
            peak_buffered: 0,
        }
    }

    /// Consumes the next chunk and returns the segments it completed.
    pub fn push(&mut self, chunk: &[u8]) -> Vec<Segment> {
        self.buf.extend_from_slice(chunk);
        self.peak_buffered = self.peak_buffered.max(self.buf.len());
        let spans = self.state.push(chunk);
        let segments = self.detach(spans);
        self.trim();
        segments
    }

    /// Log-tailing **follow mode**: returns the segments
    /// [`StreamingSplitter::finish`] would emit *right now*, without
    /// closing the stream. A consumer tailing a growing log calls this
    /// after each [`StreamingSplitter::push`] to see the provisional
    /// trailing segment(s) of the data so far, then keeps pushing —
    /// the stream state is untouched (the peek runs on a clone of the
    /// splitter simulation), so subsequent pushes behave exactly as if
    /// the peek never happened. Segments already returned by `push`
    /// are final and are not repeated here.
    pub fn peek_finish(&self) -> Vec<Segment> {
        self.state
            .clone()
            .finish()
            .into_iter()
            .map(|span| Segment {
                span,
                bytes: self.buf[span.start - self.base..span.end - self.base].to_vec(),
            })
            .collect()
    }

    /// Whether the underlying splitter stream is at a quiescent
    /// position (see
    /// [`SplitterState::is_quiescent`]):
    /// everything up to the current position is finalized and the
    /// continuation depends only on future bytes. In follow mode this
    /// is the "nothing provisional right now" signal
    /// ([`StreamingSplitter::peek_finish`] returns no segments ending
    /// at the current position beyond what `push` already emitted).
    pub fn is_quiescent(&self) -> bool {
        self.state.is_quiescent()
    }

    /// The largest stream position observed quiescent so far (see
    /// [`SplitterState::last_quiescent`]). Tracked per byte, so
    /// quiescent positions strictly inside pushed chunks are reported —
    /// the corpus-maintenance layer records these as stable resplit
    /// frontiers.
    pub fn last_quiescent(&self) -> usize {
        self.state.last_quiescent()
    }

    /// Ends the stream and returns the remaining segments.
    pub fn finish(self) -> Vec<Segment> {
        let StreamingSplitter {
            state, buf, base, ..
        } = self;
        state
            .finish()
            .into_iter()
            .map(|span| Segment {
                span,
                bytes: buf[span.start - base..span.end - base].to_vec(),
            })
            .collect()
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The largest number of bytes ever buffered at once. For splitters
    /// that confirm segments promptly (all built-ins) this is bounded by
    /// `max segment length + chunk length`, not by document size.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.peak_buffered
    }

    /// Bytes consumed from the stream so far.
    pub fn pos(&self) -> usize {
        self.state.pos()
    }

    /// Bytes the incremental splitter resolved through its skip-loop
    /// scanner instead of phase-DFA steps (see
    /// `splitc_spanner::stream::SplitterState::bytes_skipped`).
    pub fn bytes_skipped(&self) -> u64 {
        self.state.bytes_skipped()
    }

    /// Slices emitted spans out of the buffer into owned segments.
    fn detach(&self, spans: Vec<Span>) -> Vec<Segment> {
        spans
            .into_iter()
            .map(|span| Segment {
                span,
                bytes: self.buf[span.start - self.base..span.end - self.base].to_vec(),
            })
            .collect()
    }

    /// Discards buffered bytes below the splitter's low watermark.
    fn trim(&mut self) {
        let low = self.state.low_watermark();
        if low > self.base {
            self.buf.drain(..low - self.base);
            self.base = low;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::splitter;

    #[test]
    fn streamed_segments_match_batch_split() {
        let s = splitter::sentences();
        let compiled = s.compile();
        let doc = b"one one. two two. three three. tail";
        for chunk in [1, 3, 7, doc.len()] {
            let mut st = StreamingSplitter::new(&compiled);
            let mut got = Vec::new();
            for piece in doc.chunks(chunk) {
                got.extend(st.push(piece));
            }
            got.extend(st.finish());
            let expected: Vec<Segment> = compiled
                .split(doc)
                .into_iter()
                .map(|span| Segment {
                    span,
                    bytes: span.slice(doc).to_vec(),
                })
                .collect();
            assert_eq!(got, expected, "chunk size {chunk}");
        }
    }

    #[test]
    fn buffer_is_bounded_by_segment_plus_chunk() {
        let s = splitter::sentences().compile();
        let mut st = StreamingSplitter::new(&s);
        // 64 segments of ~16 bytes, fed in 8-byte chunks: the buffer
        // must stay near one segment + one chunk, not grow with the
        // document.
        let doc: Vec<u8> = (0..64).flat_map(|_| b"fifteen bytes x.".to_vec()).collect();
        let mut total = 0;
        for piece in doc.chunks(8) {
            total += st.push(piece).len();
        }
        assert!(
            st.peak_buffered_bytes() <= 32,
            "{}",
            st.peak_buffered_bytes()
        );
        total += st.finish().len();
        assert_eq!(total, 64);
    }

    #[test]
    fn empty_stream() {
        let s = splitter::sentences().compile();
        let st = StreamingSplitter::new(&s);
        assert!(st.finish().is_empty());
    }

    #[test]
    fn follow_mode_peeks_without_disturbing_the_stream() {
        let s = splitter::sentences().compile();
        let mut st = StreamingSplitter::new(&s);
        let mut emitted = Vec::new();
        // Tail a "log" arriving in pieces; after each push, peek at the
        // provisional tail and check it completes the stream so far.
        let log = b"first line x. second y. trailing tail";
        for piece in log.chunks(5) {
            emitted.extend(st.push(piece));
            let peek = st.peek_finish();
            let fed = st.pos();
            let expect: Vec<Segment> = s
                .split(&log[..fed])
                .into_iter()
                .map(|span| Segment {
                    span,
                    bytes: span.slice(&log[..fed]).to_vec(),
                })
                .collect();
            let mut seen = emitted.clone();
            seen.extend(peek);
            assert_eq!(seen, expect, "after {fed} bytes");
        }
        // The peeks must not have perturbed the final result.
        emitted.extend(st.finish());
        let expect: Vec<Segment> = s
            .split(log)
            .into_iter()
            .map(|span| Segment {
                span,
                bytes: span.slice(log).to_vec(),
            })
            .collect();
        assert_eq!(emitted, expect);
    }

    #[test]
    fn quiescence_tracks_segment_boundaries() {
        let s = splitter::sentences().compile();
        let mut st = StreamingSplitter::new(&s);
        st.push(b"a sentence.");
        assert!(
            st.is_quiescent(),
            "just past the delimiter the stream is at a fresh start"
        );
        st.push(b" an open");
        assert!(
            !st.is_quiescent(),
            "mid-segment is not quiescent (the next segment opened at the space)"
        );
        // The per-byte tracker still remembers the interior boundary.
        assert_eq!(st.last_quiescent(), 11, "position just past the period");
        st.push(b" more. and tail");
        assert_eq!(
            st.last_quiescent(),
            25,
            "advanced to just past the second period"
        );
    }
}
