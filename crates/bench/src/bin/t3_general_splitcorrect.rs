//! T3 — Theorem 5.1: general split-correctness is PSPACE-complete; the
//! reduction embeds DFA-union universality into a `P = P_S ∘ S` check.
//! The measured curve shows the exponential growth on the paper's own
//! gadget family.

use splitc_bench::families::{theorem_5_1_gadget, PRIMES};
use splitc_bench::{ms, time_best, Table};
use splitc_core::cover_condition;

fn main() {
    let mut t = Table::new(
        "T3 — Thm 5.1/5.4 gadget: cover condition ≅ union universality",
        &["n", "lcm(p)", "cover holds", "time ms"],
    );
    for n in 1..=4usize {
        let (p, _ps, s) = theorem_5_1_gadget(n);
        // The cover condition of (P, S) encodes the universality of the
        // union of the A_i (Lemma 5.4's reduction): it fails because
        // b^lcm is in no A_i.
        let (verdict, d) = time_best(1, || cover_condition(&p, &s));
        let lcm: usize = PRIMES[..n].iter().product();
        t.row(&[
            n.to_string(),
            lcm.to_string(),
            format!("{}", matches!(verdict, splitc_core::Verdict::Holds)),
            ms(d),
        ]);
    }
    t.print();
    println!(
        "\nShape check: time grows with lcm(p₁..pₙ) — exponential in the\n\
         input size — matching PSPACE-hardness (Thm 5.1, Lemma 5.4)."
    );
}
