//! Property-based tests for the spanner crate.

use crate::byteset::ByteSet;
use crate::dense::{DenseConfig, DenseEvsa};
use crate::eval::{eval, eval_evsa, reference_eval};
use crate::evsa::EVsa;
use crate::prefilter::PrefilteredEvsa;
use crate::rgx::{Ast, Rgx};
use crate::splitter::{compose, Splitter};
use crate::tuple::SpanRelation;
use crate::vsa::Vsa;
use proptest::prelude::*;
use std::sync::Arc;

const PATTERNS: &[&str] = &[
    "x{a+}",
    ".*x{a}.*",
    "x{a*}y{b*}",
    "(a|b)*x{ab}(a|b)*",
    "x{[ab]+}",
    "a?x{b}a?",
    ".*x{}.*",
    "x{a|bb}",
    "(x{a}b)|(a(x{b}))",
    ".*x{a.a}.*",
];

const SPLITTER_PATTERNS: &[&str] = &[
    "(.*\\.)?x{[^.]+}(\\..*)?", // sentences
    "x{.*}",                    // whole document
    ".*x{..}.*",                // 2-byte windows (non-disjoint)
    "x{a*}.*",                  // prefix of a's (incl. empty)
    "x{ab}b|a(x{bb})",          // paper example 5.8
];

fn doc_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'.')], 0..8)
}

/// Match-sparse documents: long runs of filler with rare interesting
/// bytes — the shape the prefilter gate and skip-loop are built for.
fn sparse_doc_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..17, 0..64).prop_map(|v| {
        v.into_iter()
            .map(|x| match x {
                0 => b'a',
                1..=8 => b'b',
                _ => b'.',
            })
            .collect()
    })
}

fn compile(p: &str) -> Vsa {
    Rgx::parse(p).unwrap().to_vsa().unwrap()
}

/// Tiny SplitMix64 stream for seeded AST generation (the proptest shim
/// samples the seed; the structure is derived deterministically).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A random variable-free regex AST over the `{a, b, .}` document
/// alphabet, depth-bounded.
fn rand_boolean_ast(rng: &mut Mix, depth: usize) -> Ast {
    let leaf = |rng: &mut Mix| match rng.below(5) {
        0 => Ast::Bytes(ByteSet::single(b'a')),
        1 => Ast::Bytes(ByteSet::single(b'b')),
        2 => Ast::Bytes(ByteSet::from_bytes(b"ab")),
        3 => Ast::Bytes(ByteSet::FULL),
        _ => Ast::Epsilon,
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(6) {
        0 | 1 => leaf(rng),
        2 => Ast::Concat(vec![
            rand_boolean_ast(rng, depth - 1),
            rand_boolean_ast(rng, depth - 1),
        ]),
        3 => Ast::Alt(vec![
            rand_boolean_ast(rng, depth - 1),
            rand_boolean_ast(rng, depth - 1),
        ]),
        4 => Ast::Star(Box::new(rand_boolean_ast(rng, depth - 1))),
        _ => Ast::Opt(Box::new(rand_boolean_ast(rng, depth - 1))),
    }
}

/// A random *functional* spanner AST: a top-level concatenation with one
/// or two variables at fixed slots (each path binds every variable
/// exactly once) and random boolean contexts around them.
fn rand_spanner_vsa(seed: u64) -> Vsa {
    let mut rng = Mix(seed);
    let two_vars = rng.below(2) == 0;
    let mut parts = vec![
        rand_boolean_ast(&mut rng, 2),
        Ast::Var("x".into(), Box::new(rand_boolean_ast(&mut rng, 2))),
        rand_boolean_ast(&mut rng, 2),
    ];
    if two_vars {
        parts.push(Ast::Var(
            "y".into(),
            Box::new(rand_boolean_ast(&mut rng, 2)),
        ));
        parts.push(rand_boolean_ast(&mut rng, 2));
    }
    Rgx::from_ast(Ast::Concat(parts))
        .expect("generated variables are well-formed")
        .to_vsa()
        .expect("generated AST is functional by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eval_agrees_with_reference(pi in 0..PATTERNS.len(), doc in doc_strategy()) {
        let p = compile(PATTERNS[pi]);
        prop_assert_eq!(eval(&p, &doc), reference_eval(&p, &doc));
    }

    #[test]
    fn determinize_preserves_outputs(pi in 0..PATTERNS.len(), doc in doc_strategy()) {
        let p = compile(PATTERNS[pi]);
        let d = p.determinize();
        prop_assert!(d.is_deterministic());
        prop_assert!(d.is_functional());
        prop_assert_eq!(eval(&p, &doc), eval(&d, &doc));
    }

    #[test]
    fn functionalize_preserves_outputs(pi in 0..PATTERNS.len(), doc in doc_strategy()) {
        let p = compile(PATTERNS[pi]);
        let f = p.functionalize();
        prop_assert!(f.is_functional());
        prop_assert_eq!(eval(&p, &doc), eval(&f, &doc));
    }

    #[test]
    fn composition_matches_pointwise_definition(
        pi in 0..PATTERNS.len(),
        si in 0..SPLITTER_PATTERNS.len(),
        doc in doc_strategy(),
    ) {
        let ps = compile(PATTERNS[pi]);
        let s = Splitter::parse(SPLITTER_PATTERNS[si]).unwrap();
        let composed = compose(&ps, &s);
        let direct = eval(&composed, &doc);
        let mut expected = Vec::new();
        for sp in s.split(&doc) {
            for t in eval(&ps, sp.slice(&doc)).iter() {
                expected.push(t.shift(sp));
            }
        }
        prop_assert_eq!(direct, SpanRelation::from_tuples(expected));
    }

    #[test]
    fn disjointness_agrees_with_bruteforce(si in 0..SPLITTER_PATTERNS.len(), docs in proptest::collection::vec(doc_strategy(), 1..6)) {
        let s = Splitter::parse(SPLITTER_PATTERNS[si]).unwrap();
        let verdict = s.is_disjoint();
        if verdict {
            // No sampled document may produce overlapping spans.
            for doc in &docs {
                let spans = s.split(doc);
                for (i, a) in spans.iter().enumerate() {
                    for b in &spans[i + 1..] {
                        prop_assert!(
                            a.disjoint(*b),
                            "claimed disjoint but {a:?} overlaps {b:?} on {doc:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn union_is_set_union(
        pi in 0..PATTERNS.len(),
        qi in 0..PATTERNS.len(),
        doc in doc_strategy(),
    ) {
        let a = compile(PATTERNS[pi]);
        let b = compile(PATTERNS[qi]);
        if a.vars().names() == b.vars().names() {
            let u = a.union(&b).unwrap();
            prop_assert_eq!(eval(&u, &doc), eval(&a, &doc).union(&eval(&b, &doc)));
        }
    }

    #[test]
    fn dense_engine_agrees_on_random_spanners(seed in 0u64..u64::MAX, doc in doc_strategy()) {
        let vsa = rand_spanner_vsa(seed);
        let f = if vsa.is_functional() { vsa.clone() } else { vsa.functionalize() };
        let evsa = Arc::new(EVsa::from_functional(&f));
        let nfa_rel = eval_evsa(&evsa, &doc);
        // Dense engine with a production-sized cache.
        let dense = DenseEvsa::compile(evsa.clone(), DenseConfig::default());
        prop_assert_eq!(dense.eval(&doc), nfa_rel.clone());
        prop_assert_eq!(dense.accepts(&doc), !nfa_rel.is_empty());
        // Dense engine with a starved cache: every scan takes the
        // overflow fallback path; results must be identical.
        let tiny = DenseEvsa::compile(evsa.clone(), DenseConfig { max_cache_states: 1, ..DenseConfig::default() });
        prop_assert_eq!(tiny.eval(&doc), nfa_rel.clone());
        prop_assert_eq!(tiny.accepts(&doc), !nfa_rel.is_empty());
        // Independent oracle (exponential; keep it to every 8th case).
        if seed % 8 == 0 {
            prop_assert_eq!(nfa_rel, reference_eval(&vsa, &doc));
        }
    }

    #[test]
    fn prefilter_engine_agrees_on_random_spanners(
        seed in 0u64..u64::MAX,
        dense_doc in doc_strategy(),
        sparse_doc in sparse_doc_strategy(),
    ) {
        // Prefiltered engine (gate + skip-loop) == dense == nfa on
        // random spanners over both match-dense and match-sparse
        // documents; trivial analyses must fall back transparently.
        let vsa = rand_spanner_vsa(seed);
        let f = if vsa.is_functional() { vsa.clone() } else { vsa.functionalize() };
        let evsa = Arc::new(EVsa::from_functional(&f));
        let pre = PrefilteredEvsa::compile(evsa.clone(), DenseConfig::default());
        let dense = DenseEvsa::compile(evsa.clone(), DenseConfig::default());
        for doc in [&dense_doc, &sparse_doc] {
            let nfa_rel = eval_evsa(&evsa, doc);
            prop_assert_eq!(dense.eval(doc), nfa_rel.clone());
            prop_assert_eq!(pre.eval(doc), nfa_rel.clone());
            prop_assert_eq!(pre.accepts(doc), !nfa_rel.is_empty());
        }
    }

    #[test]
    fn prefilter_engine_agrees_on_fixed_patterns(pi in 0..PATTERNS.len(), doc in sparse_doc_strategy()) {
        // Fixed patterns include the empty-literal-set shapes (".*x{}.*",
        // "x{a*}y{b*}" accept the empty document) — the documented
        // fallback path where the gate is transparent.
        let vsa = compile(PATTERNS[pi]);
        let f = if vsa.is_functional() { vsa.clone() } else { vsa.functionalize() };
        let evsa = Arc::new(EVsa::from_functional(&f));
        let pre = PrefilteredEvsa::compile(evsa.clone(), DenseConfig::default());
        if pre.analysis().is_trivial() {
            prop_assert!(pre.gate().is_transparent());
        }
        prop_assert_eq!(pre.eval(&doc), eval_evsa(&evsa, &doc));
    }

    #[test]
    fn dense_engine_agrees_on_fixed_patterns(pi in 0..PATTERNS.len(), doc in doc_strategy()) {
        let vsa = compile(PATTERNS[pi]);
        let f = if vsa.is_functional() { vsa.clone() } else { vsa.functionalize() };
        let evsa = Arc::new(EVsa::from_functional(&f));
        let dense = DenseEvsa::compile(evsa.clone(), DenseConfig::default());
        prop_assert_eq!(dense.eval(&doc), eval_evsa(&evsa, &doc));
    }

    #[test]
    fn compiled_splitter_dense_path_agrees(si in 0..SPLITTER_PATTERNS.len(), doc in doc_strategy()) {
        let s = Splitter::parse(SPLITTER_PATTERNS[si]).unwrap();
        // Dense fast path (default compile) vs the uncompiled NFA path,
        // plus the starved-cache fallback.
        prop_assert_eq!(s.compile().split(&doc), s.split(&doc));
        let starved = s.compile_with(DenseConfig { max_cache_states: 1, ..DenseConfig::default() });
        prop_assert_eq!(starved.split(&doc), s.split(&doc));
    }

    #[test]
    fn equivalence_consistent_with_eval(
        pi in 0..PATTERNS.len(),
        qi in 0..PATTERNS.len(),
        doc in doc_strategy(),
    ) {
        let a = compile(PATTERNS[pi]);
        let b = compile(PATTERNS[qi]);
        if a.vars().names() == b.vars().names()
            && crate::equiv::spanner_equivalent(&a, &b).unwrap().holds()
        {
            prop_assert_eq!(eval(&a, &doc), eval(&b, &doc));
        }
    }
}
