//! Reasoning about splitters for query planning (paper §6) and
//! split-constrained black boxes (§7.1).
//!
//! A text-analysis system holding several materialized splitters can
//! reorder or nest them when they commute or subsume each other, and can
//! infer splittability of joins involving opaque (e.g. ML-based)
//! extractors from declared split constraints.
//!
//! ```sh
//! cargo run --release --example query_planning
//! ```

use split_correctness::core::blackbox::{
    infer_join_splittable, Signature, SpannerSymbol, SplitConstraint,
};
use split_correctness::core::reasoning::{commute, subsumes};
use split_correctness::prelude::*;

fn main() {
    let sentences = splitters::sentences();
    let lines = splitters::lines();
    let paragraphs = splitters::paragraphs();

    // --- §6: commutativity ---------------------------------------------
    // "Splitting by pages then paragraphs equals paragraphs then pages":
    // here, sentences and lines commute (maximal runs free of both).
    let v = commute(&sentences, &lines, None).unwrap();
    println!("sentences ∘ lines = lines ∘ sentences? {}", v.holds());

    // --- §6: subsumption -------------------------------------------------
    // Can the sentence splitter be evaluated inside paragraph chunks?
    // sentences = sentences ∘ paragraphs would let the planner split by
    // paragraphs first and parallelize sentence splitting per paragraph.
    let v = subsumes(&sentences, &paragraphs, None).unwrap();
    println!(
        "sentences subsumed by paragraphs (sentences = par ∘ sentences)? {}",
        v.holds()
    );
    // Whole-document trivially subsumes everything that re-yields it:
    let whole = splitters::whole_document();
    println!(
        "whole-document subsumes whole-document? {}",
        subsumes(&whole, &whole, None).unwrap().holds()
    );

    // --- §7.1: black-box inference ---------------------------------------
    // α is a regular "glue" spanner; `coref` is an opaque extractor known
    // (by its vendor) to be self-splittable by sentences. Theorem 7.4:
    // the join α ⋈ coref is splittable by sentences.
    let alpha = Rgx::parse(".*q(x{[ab]+})q.*").unwrap().to_vsa().unwrap();
    let signature = Signature::new(vec![SpannerSymbol {
        name: "coref".into(),
        vars: VarTable::new(["x", "y"]).unwrap(),
    }])
    .unwrap();
    let constraints = vec![SplitConstraint {
        symbol: "coref".into(),
        splitter: sentences.clone(),
    }];
    let verdict = infer_join_splittable(&alpha, &signature, &constraints, &sentences).unwrap();
    println!(
        "α ⋈ coref splittable by sentences (inferred without inspecting coref)? {}",
        verdict.inferred()
    );

    // Lemma 7.3: with a non-disjoint splitter the inference is refused.
    let windows = splitters::ngrams(2);
    let constraints2 = vec![SplitConstraint {
        symbol: "coref".into(),
        splitter: windows.clone(),
    }];
    let refused = infer_join_splittable(&alpha, &signature, &constraints2, &windows).unwrap();
    println!(
        "same inference over (non-disjoint) 2-grams refused? {}",
        !refused.inferred()
    );
}
