//! Incremental evaluation under document edits.
//!
//! The paper (§1): *"when a large document undergoes a minor edit, like
//! in the Wikipedia model, only the relevant segments (e.g., sentences
//! or paragraphs) need to be reprocessed."* Given a certified
//! `P = P_S ∘ S`, evaluation factors through segments; caching the
//! per-segment relations by segment **content** makes re-evaluation of
//! an edited document cost only the changed segments.
//!
//! The cache behind this runner is the shared, *bounded*
//! [`SegmentCache`] (it used to be a private unbounded map): capacity
//! is enforced by FIFO eviction, which affects speed only — an evicted
//! segment is recomputed on its next miss, and results are always
//! byte-identical (asserted by the eviction regression test below and
//! the capacity-2 differential proptests). For corpus-scale maintained
//! documents see [`crate::handle::CorpusHandle`], which adds
//! incremental *resplitting* on top of the same cache.

use crate::engine::{ExecSpanner, SplitFn};
use crate::segcache::SegmentCache;
use splitc_spanner::tuple::{SpanRelation, SpanTuple};
use std::sync::Arc;

/// Default cache capacity (segments) when none is given.
const DEFAULT_CAPACITY: usize = 1 << 16;

/// Cache statistics of an [`IncrementalRunner`].
///
/// One segment evaluation is counted per split span of every document
/// passed to [`IncrementalRunner::eval`]: a *hit* reuses the relation
/// stored for identical segment content (identical content ⇒ identical
/// relation, since spanners are functions of the segment bytes), a
/// *miss* evaluates the spanner and populates the cache. After an edit
/// that touches `k` of `n` segments, expect `k` misses and `n − k` hits
/// — the quantitative form of the paper's "only the relevant segments
/// need to be reprocessed". Counters are cumulative until
/// [`IncrementalRunner::clear`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Segments answered from cache.
    pub hits: usize,
    /// Segments evaluated from scratch.
    pub misses: usize,
}

/// Incremental evaluator: splits documents and caches per-segment
/// relations keyed by segment content hash (with collision verification
/// against the stored content bytes, so hash collisions cost a re-check,
/// never a wrong answer).
///
/// The cache is shared across documents and **bounded** (see
/// [`SegmentCache`]); eviction never changes results. Construct with a
/// default bound via [`IncrementalRunner::new`], an explicit one via
/// [`IncrementalRunner::with_capacity`], or share one process-wide
/// cache via [`IncrementalRunner::with_cache`]. Evaluation is
/// sequential per document — for corpus-scale parallel streaming see
/// [`crate::corpus::CorpusRunner`], which plugs the same cache under a
/// worker pool.
pub struct IncrementalRunner {
    spanner: ExecSpanner,
    split: SplitFn,
    cache: Arc<SegmentCache>,
}

impl IncrementalRunner {
    /// Creates a runner for a (split-)spanner and splitter with a
    /// default cache bound.
    pub fn new(spanner: ExecSpanner, split: SplitFn) -> IncrementalRunner {
        IncrementalRunner::with_capacity(spanner, split, DEFAULT_CAPACITY)
    }

    /// [`IncrementalRunner::new`] with an explicit cache capacity
    /// (segments). A starved cache stays correct — it just recomputes
    /// more.
    pub fn with_capacity(
        spanner: ExecSpanner,
        split: SplitFn,
        capacity: usize,
    ) -> IncrementalRunner {
        IncrementalRunner::with_cache(spanner, split, Arc::new(SegmentCache::new(capacity)))
    }

    /// [`IncrementalRunner::new`] over an externally shared
    /// [`SegmentCache`] (e.g. one also attached to the corpus runners,
    /// so both paths reuse each other's segment results).
    pub fn with_cache(
        spanner: ExecSpanner,
        split: SplitFn,
        cache: Arc<SegmentCache>,
    ) -> IncrementalRunner {
        IncrementalRunner {
            spanner,
            split,
            cache,
        }
    }

    /// Evaluates `P_S ∘ S` on the document, reusing cached segment
    /// results: each split span's relation is looked up by content,
    /// computed on miss, shifted by the span's offset (`≫`), and the
    /// union is returned. Equals whole-document evaluation of `P`
    /// whenever `P = P_S ∘ S` is certified.
    pub fn eval(&self, doc: &[u8]) -> SpanRelation {
        let id = self.spanner.cache_id();
        let chunks = (self.split)(doc);
        let mut tuples: Vec<SpanTuple> = Vec::new();
        for sp in chunks {
            let content = sp.slice(doc);
            let (local, _hit) = self
                .cache
                .get_or_eval(id, content, || self.spanner.eval(content));
            tuples.extend(local.iter().map(|t| t.shift(sp)));
        }
        SpanRelation::from_tuples(tuples)
    }

    /// Cache statistics so far. When the cache is shared
    /// ([`IncrementalRunner::with_cache`]), counters aggregate over
    /// every user of the cache.
    pub fn stats(&self) -> CacheStats {
        let s = self.cache.stats();
        CacheStats {
            hits: s.hits as usize,
            misses: s.misses as usize,
        }
    }

    /// Number of cached segments (across all spanners, for a shared
    /// cache).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The underlying segment cache.
    pub fn cache(&self) -> &Arc<SegmentCache> {
        &self.cache
    }

    /// Clears the cache and statistics.
    pub fn clear(&self) {
        self.cache.clear();
        self.cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter::native;
    use std::sync::Arc;

    fn runner(pat: &str) -> IncrementalRunner {
        let spanner = ExecSpanner::compile(&Rgx::parse(pat).unwrap().to_vsa().unwrap());
        IncrementalRunner::new(spanner, Arc::new(native::sentences))
    }

    #[test]
    fn incremental_matches_direct() {
        let r = runner(".*x{a+}.*");
        let doc = b"aa b. c aaa. aa";
        let direct = r.spanner.eval(doc);
        assert_eq!(r.eval(doc), direct, "self-splittable: equal semantics");
    }

    #[test]
    fn single_segment_edit_reuses_other_segments() {
        let r = runner(".*x{a+}.*");
        let v1 = b"aaa bb. cc aa. dd a";
        let _ = r.eval(v1);
        let s1 = r.stats();
        assert_eq!(s1.misses, 3);
        assert_eq!(s1.hits, 0);
        // Edit the middle sentence only.
        let v2 = b"aaa bb. cc aaaa. dd a";
        let rel = r.eval(v2);
        let s2 = r.stats();
        assert_eq!(s2.misses, 4, "only the edited segment is recomputed");
        assert_eq!(s2.hits, 2, "the other two segments come from cache");
        // Semantics unaffected by caching.
        assert_eq!(rel, r.spanner.eval(v2));
    }

    #[test]
    fn repeated_segments_hit_cache_within_one_doc() {
        let r = runner(".*x{a+}.*");
        let doc = b"aa.aa.aa"; // three identical segments "aa"
        let rel = r.eval(doc);
        let s = r.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        // Per segment: x ∈ {a@0, a@1, aa} — 3 tuples, shifted apart.
        assert_eq!(rel.len(), 9, "shifted copies are distinct tuples");
        assert_eq!(r.cache_len(), 1);
    }

    #[test]
    fn clear_resets() {
        let r = runner("x{a*}");
        let _ = r.eval(b"aa");
        assert!(r.cache_len() > 0);
        r.clear();
        assert_eq!(r.cache_len(), 0);
        assert_eq!(r.stats(), CacheStats::default());
    }

    #[test]
    fn eviction_never_changes_results() {
        // Regression for the formerly-unbounded cache: a runner starved
        // to (effectively) a handful of entries must keep returning
        // exactly what an unbounded runner returns, across a working
        // set far larger than its capacity, while actually evicting.
        let spanner = ExecSpanner::compile(&Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap());
        let starved =
            IncrementalRunner::with_capacity(spanner.clone(), Arc::new(native::sentences), 2);
        let unbounded = IncrementalRunner::new(spanner, Arc::new(native::sentences));
        let docs: Vec<String> = (0..40)
            .map(|i| format!("aa{i} bb. cc a{i}a. dd aaa{i}. tail a"))
            .collect();
        for round in 0..2 {
            for (i, d) in docs.iter().enumerate() {
                assert_eq!(
                    starved.eval(d.as_bytes()),
                    unbounded.eval(d.as_bytes()),
                    "round {round} doc {i}"
                );
            }
        }
        let s = starved.cache().stats();
        assert!(s.evictions > 0, "the bound must have been enforced: {s:?}");
        assert!(
            starved.cache_len() <= starved.cache().capacity(),
            "cache stayed within its bound"
        );
    }
}
