//! Workload spanners: the information extractors the experiments run.
//!
//! Every extractor exists in formal form (a [`Vsa`] compiled from a regex
//! formula), so the split-correctness decision procedures can certify
//! them against the formal splitters; the execution engine then runs the
//! very same automata on the synthetic corpora.

use splitc_spanner::rgx::Rgx;
use splitc_spanner::vsa::Vsa;

const TOKEN: &str = "[A-Za-z0-9]+";
const LOWER: &str = "[a-z]+";
const CAP: &str = "[A-Z][a-z]+";
/// Left token boundary: document start or any non-alphanumeric byte.
/// Using the full non-token byte class (rather than just spaces) keeps
/// the extractors consistent with sentence/paragraph chunk edges — the
/// split-correctness checker itself caught a boundary mismatch in an
/// earlier space-only formulation (witness document ".0 0").
const PRE: &str = "(.*[^A-Za-z0-9]|)";
/// Right token boundary.
const POST: &str = "([^A-Za-z0-9].*|)";

fn compile(pattern: &str) -> Vsa {
    Rgx::parse(pattern)
        .unwrap_or_else(|e| panic!("workload pattern {pattern:?}: {e}"))
        .to_vsa()
        .unwrap_or_else(|e| panic!("workload pattern {pattern:?}: {e}"))
}

/// The N-gram enumerator (paper §1: "we have extracted N-grams from
/// 1.53 GB Wikipedia sentences"): captures every window of `n`
/// consecutive tokens separated by single spaces.
pub fn ngram_extractor(n: usize) -> Vsa {
    assert!(n >= 1);
    let mut inner = String::from(TOKEN);
    for _ in 1..n {
        inner.push(' ');
        inner.push_str(TOKEN);
    }
    compile(&format!("{PRE}g{{{inner}}}{POST}"))
}

/// Financial-transaction event extractor (paper §1, Reuters experiment):
/// `Org (paid|acquired) Org <amount>` with the organizations and amount
/// captured.
pub fn transaction_extractor() -> Vsa {
    compile(&format!(
        "{PRE}a{{{CAP}}} (paid|acquired) b{{{CAP}}} amt{{[0-9]+}}{POST}"
    ))
}

/// Negative-sentiment target extractor (paper §1, Amazon reviews):
/// `<target> (is|was) (bad|poor|awful)`, capturing the target token.
pub fn negative_sentiment_targets() -> Vsa {
    compile(&format!(
        "{PRE}t{{{LOWER}}} (is|was) (bad|poor|awful){POST}"
    ))
}

/// A NER-like person/organization name extractor: capitalized tokens.
pub fn entity_extractor() -> Vsa {
    compile(&format!("{PRE}e{{{CAP}}}{POST}"))
}

/// HTTP request-line extractor for blank-line-separated logs: the
/// lowercase method + path line at the start of each message (the
/// self-splittable variant of the paper's §3.1 example).
pub fn request_line_extractor() -> Vsa {
    compile("(.*\\n\\n|)m{(get|post) [a-z]+}(\\n.*|)")
}

/// The *buggy* variant from the paper's debugging motivation (§1): pairs
/// a `host` header with a `date` header that may belong to a *different*
/// message (the pattern gladly crosses blank lines) — the system should
/// report it as not splittable by HTTP messages.
pub fn host_date_buggy() -> Vsa {
    compile("(.*\\n|)host h{[a-z]+}\\n(.*\\n|)date d{[a-z]+}(\\n.*|)")
}

/// The repaired variant: host and date within the same message (no blank
/// line between them). The suffix tolerates a single document-final
/// newline, mirroring the message splitter's chunk suffix `(\n\n.*|\n?)`
/// — without it, a log ending in `\n` is rejected whole-document but
/// accepted per-message, and certification rightly fails.
pub fn host_date_fixed() -> Vsa {
    compile(
        "(.*\\n\\n|)([a-z ]+\\n)*host h{[a-z]+}\\n([a-z ]+\\n)*date d{[a-z]+}(\\n[a-z ]+)*(\\n\\n.*|\\n|)",
    )
}

/// The fleet-member extractor for keyword `i` of
/// [`crate::corpus::fleet_keyword`]: spans of `<keyword><digits>`
/// mention tokens, anywhere in the segment. The keyword is a required
/// literal of the automaton, so the prefilter analysis recovers it and
/// the fleet engine enrolls it in the shared multi-needle scanner.
pub fn keyword_extractor(i: usize) -> Vsa {
    let kw = crate::corpus::fleet_keyword(i);
    Rgx::parse(&format!(".*x{{{kw}[0-9]+}}.*"))
        .unwrap()
        .to_vsa()
        .unwrap()
}

/// The first `n` keyword extractors — a ready-made fleet for the
/// `e7_fleet` benchmark and the fleet example.
pub fn keyword_fleet(n: usize) -> Vec<Vsa> {
    (0..n).map(keyword_extractor).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::eval::eval;
    use splitc_spanner::span::Span;

    #[test]
    fn ngram_extractor_counts() {
        let p = ngram_extractor(2);
        let rel = eval(&p, b"one two three");
        assert_eq!(rel.len(), 2);
        let p3 = ngram_extractor(3);
        assert_eq!(eval(&p3, b"one two three").len(), 1);
        assert!(eval(&p3, b"one two").is_empty());
    }

    #[test]
    fn transaction_extractor_finds_events() {
        let p = transaction_extractor();
        let doc = b"intro words Acme paid Globex 500 more words.";
        let rel = eval(&p, doc);
        assert_eq!(rel.len(), 1);
        let t = &rel.tuples()[0];
        let a = p.vars().lookup("a").unwrap();
        let amt = p.vars().lookup("amt").unwrap();
        assert_eq!(t.get(a).slice(doc), b"Acme");
        assert_eq!(t.get(amt).slice(doc), b"500");
        assert!(
            eval(&p, b"Acme paid globex 500").is_empty(),
            "lowercase org"
        );
    }

    #[test]
    fn negative_sentiment_targets_work() {
        let p = negative_sentiment_targets();
        let doc = b"the soup was awful";
        let rel = eval(&p, doc);
        assert_eq!(rel.len(), 1);
        let t = p.vars().lookup("t").unwrap();
        assert_eq!(rel.tuples()[0].get(t).slice(doc), b"soup");
        assert!(eval(&p, b"the soup was great").is_empty());
    }

    #[test]
    fn entity_extractor_finds_caps() {
        let p = entity_extractor();
        let rel = eval(&p, b"met Alice and Bob today");
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn request_line_extractor_on_log() {
        let p = request_line_extractor();
        let log = b"get alpha\nhost h\n\npost beta\nhost i";
        let rel = eval(&p, log);
        assert_eq!(rel.len(), 2);
        let m = p.vars().lookup("m").unwrap();
        let spans: Vec<Span> = rel.iter().map(|t| t.get(m)).collect();
        assert_eq!(spans[0].slice(log), b"get alpha");
        assert_eq!(spans[1].slice(log), b"post beta");
    }

    #[test]
    fn host_date_bug_crosses_messages() {
        let buggy = host_date_buggy();
        // host in message 1, date in message 2 — the bug.
        let log = b"host abc\n\ndate xyz\n";
        let rel = eval(&buggy, log);
        assert!(!rel.is_empty(), "buggy extractor pairs across messages");
        let fixed = host_date_fixed();
        assert!(eval(&fixed, log).is_empty());
        // Within one message both fire.
        let ok_log = b"host abc\ndate xyz";
        assert!(!eval(&buggy, ok_log).is_empty());
        assert!(!eval(&fixed, ok_log).is_empty());
    }

    #[test]
    fn workloads_fire_on_generated_corpora() {
        let articles = crate::articles_corpus(20, 42);
        let tx = transaction_extractor();
        let total: usize = articles.iter().map(|d| eval(&tx, d).len()).sum();
        assert!(total > 0, "transactions extracted from articles");

        let reviews = crate::reviews_corpus(20, 42);
        let neg = negative_sentiment_targets();
        let total: usize = reviews.iter().map(|d| eval(&neg, d).len()).sum();
        assert!(total > 0, "targets extracted from reviews");

        let log = crate::http_log(8, 42);
        let rl = request_line_extractor();
        assert_eq!(eval(&rl, &log).len(), 8);
    }
}
