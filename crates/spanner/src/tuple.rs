//! `(V, d)`-tuples and span relations (paper §2).

use crate::span::Span;
use crate::vars::{VarId, VarTable};
use std::fmt;

/// A `(V, d)`-tuple: a total assignment of spans to the variables of a
/// table. Spans are stored densely, indexed by [`VarId`].
///
/// All spanners in this library are *functional* (every output tuple
/// assigns every variable), matching the paper's setting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanTuple {
    spans: Box<[Span]>,
}

impl SpanTuple {
    /// Creates a tuple from the dense span assignment.
    pub fn new(spans: Vec<Span>) -> SpanTuple {
        SpanTuple {
            spans: spans.into_boxed_slice(),
        }
    }

    /// The empty tuple `()` of a Boolean spanner.
    pub fn unit() -> SpanTuple {
        SpanTuple {
            spans: Box::new([]),
        }
    }

    /// Number of variables.
    #[inline]
    pub fn arity(&self) -> usize {
        self.spans.len()
    }

    /// Span assigned to `v`.
    #[inline]
    pub fn get(&self, v: VarId) -> Span {
        self.spans[v.index()]
    }

    /// All spans in variable order.
    #[inline]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The paper's tuple shift `t ≫ s`: shifts every span by `s`.
    pub fn shift(&self, s: Span) -> SpanTuple {
        SpanTuple {
            spans: self.spans.iter().map(|sp| sp.shift(s)).collect(),
        }
    }

    /// Inverse shift; `None` if some span is not contained in `s`.
    pub fn unshift(&self, s: Span) -> Option<SpanTuple> {
        let mut out = Vec::with_capacity(self.spans.len());
        for sp in self.spans.iter() {
            out.push(sp.unshift(s)?);
        }
        Some(SpanTuple::new(out))
    }

    /// Whether `s` *covers* this tuple: `s` contains every assigned span
    /// (Definition 5.2).
    pub fn covered_by(&self, s: Span) -> bool {
        self.spans.iter().all(|sp| s.contains_span(*sp))
    }

    /// The minimal span containing every assigned span, or `None` for the
    /// empty tuple (which is covered by any span).
    pub fn minimal_cover(&self) -> Option<Span> {
        let start = self.spans.iter().map(|s| s.start).min()?;
        let end = self.spans.iter().map(|s| s.end).max()?;
        Some(Span::new(start, end))
    }

    /// Renders with variable names.
    pub fn display<'a>(&'a self, table: &'a VarTable) -> TupleDisplay<'a> {
        TupleDisplay { tuple: self, table }
    }
}

/// Display helper pairing a tuple with its variable table.
pub struct TupleDisplay<'a> {
    tuple: &'a SpanTuple,
    table: &'a VarTable,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.table.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", self.table.name(v), self.tuple.get(v))?;
        }
        write!(f, ")")
    }
}

/// A span relation: the output of a spanner on one document — a sorted,
/// duplicate-free set of tuples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanRelation {
    tuples: Vec<SpanTuple>,
}

impl SpanRelation {
    /// The empty relation.
    pub fn empty() -> SpanRelation {
        SpanRelation { tuples: Vec::new() }
    }

    /// Builds a relation, sorting and deduplicating. Already-sorted
    /// inputs (the common case for evaluator output merged across
    /// ordered disjoint chunks) are detected in `O(n)` and not re-sorted.
    pub fn from_tuples(mut tuples: Vec<SpanTuple>) -> SpanRelation {
        if !tuples.windows(2).all(|w| w[0] <= w[1]) {
            tuples.sort_unstable();
        }
        tuples.dedup();
        SpanRelation { tuples }
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, sorted.
    #[inline]
    pub fn tuples(&self) -> &[SpanTuple] {
        &self.tuples
    }

    /// Membership test (binary search).
    pub fn contains(&self, t: &SpanTuple) -> bool {
        self.tuples.binary_search(t).is_ok()
    }

    /// Union of two relations.
    pub fn union(&self, other: &SpanRelation) -> SpanRelation {
        let mut all = self.tuples.clone();
        all.extend(other.tuples.iter().cloned());
        SpanRelation::from_tuples(all)
    }

    /// Shifts every tuple by `s` (used when assembling `P ∘ S` outputs).
    pub fn shift(&self, s: Span) -> SpanRelation {
        // Shifting preserves order, so no re-sort is needed.
        SpanRelation {
            tuples: self.tuples.iter().map(|t| t.shift(s)).collect(),
        }
    }

    /// Iterates the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &SpanTuple> {
        self.tuples.iter()
    }
}

impl FromIterator<SpanTuple> for SpanRelation {
    fn from_iter<I: IntoIterator<Item = SpanTuple>>(iter: I) -> Self {
        SpanRelation::from_tuples(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(spans: &[(usize, usize)]) -> SpanTuple {
        SpanTuple::new(spans.iter().map(|&(a, b)| Span::new(a, b)).collect())
    }

    #[test]
    fn tuple_shift() {
        let tu = t(&[(1, 3), (2, 2)]);
        let s = Span::new(5, 20);
        let shifted = tu.shift(s);
        assert_eq!(shifted.get(VarId(0)), Span::new(6, 8));
        assert_eq!(shifted.get(VarId(1)), Span::new(7, 7));
        assert_eq!(shifted.unshift(s).unwrap(), tu);
    }

    #[test]
    fn unshift_requires_containment() {
        let tu = t(&[(1, 3)]);
        assert!(tu.unshift(Span::new(2, 9)).is_none());
        assert!(tu.unshift(Span::new(0, 3)).is_some());
    }

    #[test]
    fn cover() {
        let tu = t(&[(2, 4), (6, 8)]);
        assert!(tu.covered_by(Span::new(2, 8)));
        assert!(tu.covered_by(Span::new(0, 10)));
        assert!(!tu.covered_by(Span::new(3, 10)));
        assert_eq!(tu.minimal_cover(), Some(Span::new(2, 8)));
        assert_eq!(SpanTuple::unit().minimal_cover(), None);
        assert!(SpanTuple::unit().covered_by(Span::new(3, 3)));
    }

    #[test]
    fn relation_set_semantics() {
        let r = SpanRelation::from_tuples(vec![t(&[(1, 2)]), t(&[(0, 1)]), t(&[(1, 2)])]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[(0, 1)])));
        assert!(!r.contains(&t(&[(5, 6)])));
        assert_eq!(r.tuples()[0], t(&[(0, 1)]));
    }

    #[test]
    fn relation_union_and_shift() {
        let a = SpanRelation::from_tuples(vec![t(&[(0, 1)])]);
        let b = SpanRelation::from_tuples(vec![t(&[(1, 2)])]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        let sh = u.shift(Span::new(10, 30));
        assert!(sh.contains(&t(&[(10, 11)])));
        assert!(sh.contains(&t(&[(11, 12)])));
    }

    #[test]
    fn display_uses_one_based_paper_notation() {
        let table = VarTable::new(["x"]).unwrap();
        let tu = t(&[(0, 2)]);
        assert_eq!(format!("{}", tu.display(&table)), "(x: [1, 3⟩)");
    }
}
