//! Split-correctness and self-splittability (paper §5.1, §5.3).
//!
//! *Split-correctness*: given spanners `P`, `P_S` and a splitter `S`,
//! decide whether `P = P_S ∘ S` (Definition 3.1). The general procedure
//! ([`split_correct`], Theorem 5.1) constructs the composed spanner
//! `P′ = P_S ∘ S` (Lemma C.1/C.2, polynomial size) and tests spanner
//! equivalence `P = P′` — PSPACE-complete for RGX and VSA.
//!
//! For deterministic functional automata and a **disjoint** splitter,
//! [`split_correct_df`] implements the polynomial-time procedure of
//! Theorem 5.7: first the cover condition (Lemma 5.6), then a guarded
//! product search for a ref-word on which `P` and `P_S` disagree
//! relative to the (unique) covering split. Self-splittability is the
//! special case `P_S = P` ([`self_splittable`], [`self_splittable_df`];
//! Theorems 5.16 and 5.17).
//!
//! ## Boundary caveat (documented deviation)
//!
//! The paper's Theorem 5.7 algorithm — reproduced faithfully here —
//! checks *pointwise* agreement per covering split. When a tuple
//! consists solely of empty spans sitting exactly on the boundary
//! between two adjacent splits, that tuple is covered by **two**
//! disjoint splits, and pointwise agreement is slightly stronger than
//! `P = P_S ∘ S` (the union over splits could produce the tuple through
//! the other split). The exact semantics is always available through
//! [`split_correct`]; the test suite contains a witness for the
//! discrepancy (`boundary_empty_span_corner`).

use crate::cover;
use crate::error::CertError;
use crate::util;
use splitc_automata::nfa::{Nfa, StateId, Sym};
use splitc_automata::ops::{self, Containment};
use splitc_spanner::equiv::{CheckStrategy, SpannerCheck};
use splitc_spanner::ext::ExtAlphabet;
use splitc_spanner::span::Span;
use splitc_spanner::splitter::{compose, Splitter};
use splitc_spanner::tuple::SpanTuple;
use splitc_spanner::vars::{VarOp, VarTable};
use splitc_spanner::vsa::Vsa;
use std::fmt;

/// Outcome of a split-correctness style check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds.
    Holds,
    /// The property fails, with a concrete witness.
    Fails(CounterExample),
}

impl Verdict {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// A concrete witness that a property fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// Document on which the two sides disagree.
    pub doc: Vec<u8>,
    /// The disputed tuple (over `SVars(P)`).
    pub tuple: SpanTuple,
    /// The split involved, when the procedure pins one down.
    pub split: Option<Span>,
    /// `true` when `P` produces the tuple but the split side does not.
    pub left_has_it: bool,
    /// Human-readable explanation.
    pub reason: String,
}

impl fmt::Display for CounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (doc: {:?}, tuple spans: {:?})",
            self.reason,
            String::from_utf8_lossy(&self.doc),
            self.tuple.spans()
        )
    }
}

/// Error returned by the fast-path procedures when their preconditions
/// (determinism, functionality, disjointness) are not met.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastPathError {
    /// What precondition failed.
    pub message: String,
}

impl FastPathError {
    pub(crate) fn new(message: impl Into<String>) -> FastPathError {
        FastPathError {
            message: message.into(),
        }
    }
}

impl fmt::Display for FastPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fast path unavailable: {}", self.message)
    }
}

impl std::error::Error for FastPathError {}

/// General split-correctness (Theorem 5.1): is `P = P_S ∘ S`?
///
/// Builds the composed spanner (polynomial, Lemma C.2) and decides
/// spanner equivalence — PSPACE-complete in general, polynomial when
/// both sides happen to normalize deterministically.
///
/// ```
/// use splitc_core::split_correct;
/// use splitc_spanner::{Rgx, Splitter};
///
/// // P: the first lowercase line of each blank-line-separated message;
/// // P_S: the first line of a chunk. P = P_S ∘ S for the message splitter.
/// let p = Rgx::parse("(.*\\n\\n|)x{[a-z]+}(\\n.*|)").unwrap().to_vsa().unwrap();
/// let ps = Rgx::parse("x{[a-z]+}(\\n.*|)").unwrap().to_vsa().unwrap();
/// let s = splitc_spanner::splitter::http_messages();
/// assert!(split_correct(&p, &ps, &s).unwrap().holds());
/// ```
pub fn split_correct(p: &Vsa, ps: &Vsa, s: &Splitter) -> Result<Verdict, CertError> {
    split_correct_with(p, ps, s, CheckStrategy::default())
}

/// [`split_correct`] with an explicit containment engine
/// ([`CheckStrategy`]); the determinize-first strategy is the
/// differential-testing and benchmarking baseline of the antichain
/// certification engine.
pub fn split_correct_with(
    p: &Vsa,
    ps: &Vsa,
    s: &Splitter,
    strategy: CheckStrategy,
) -> Result<Verdict, CertError> {
    if p.vars().names() != ps.vars().names() {
        return Err(CertError::VariableMismatch {
            left: p.vars().to_string(),
            right: ps.vars().to_string(),
        });
    }
    let composed = compose(ps, s);
    split_correct_composed(p, &composed, strategy)
}

/// Split-correctness against an **already composed** spanner
/// `P′ = P_S ∘ S` (see [`splitc_spanner::splitter::compose`]).
///
/// This is the batch certifier's entry point
/// (`splitc_exec::certify::certify_many`): across many `(P, P_S)` pairs
/// sharing a splitter, the polynomial-size composition is computed once
/// per distinct `P_S` and reused, so each pair only pays for the
/// equivalence search itself.
pub fn split_correct_composed(
    p: &Vsa,
    composed: &Vsa,
    strategy: CheckStrategy,
) -> Result<Verdict, CertError> {
    Ok(
        match splitc_spanner::spanner_equivalent_with(p, composed, strategy)? {
            SpannerCheck::Holds => Verdict::Holds,
            SpannerCheck::Counterexample {
                doc,
                tuple,
                left_has_it,
            } => Verdict::Fails(CounterExample {
                doc,
                tuple,
                split: None,
                left_has_it,
                reason: if left_has_it {
                    "P produces a tuple that P_S ∘ S does not".into()
                } else {
                    "P_S ∘ S produces a tuple that P does not".into()
                },
            }),
        },
    )
}

/// Self-splittability (Theorem 5.16): is `P = P ∘ S`?
///
/// ```
/// use splitc_core::{self_splittable, Verdict};
/// use splitc_spanner::Rgx;
///
/// let runs = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();
/// let s = splitc_spanner::splitter::sentences();
/// assert!(self_splittable(&runs, &s).unwrap().holds());
///
/// // A sentence-crossing extractor is rejected with a witness document.
/// let crossing = Rgx::parse(".*x{a\\.a}.*").unwrap().to_vsa().unwrap();
/// match self_splittable(&crossing, &s).unwrap() {
///     Verdict::Fails(cex) => assert!(cex.doc.contains(&b'.')),
///     Verdict::Holds => unreachable!(),
/// }
/// ```
pub fn self_splittable(p: &Vsa, s: &Splitter) -> Result<Verdict, CertError> {
    split_correct(p, p, s)
}

/// Polynomial-time split-correctness for deterministic functional
/// VSet-automata with a disjoint splitter (Theorem 5.7).
///
/// See the module documentation for the boundary caveat.
pub fn split_correct_df(p: &Vsa, ps: &Vsa, s: &Splitter) -> Result<Verdict, CertError> {
    if p.vars().names() != ps.vars().names() {
        return Err(CertError::VariableMismatch {
            left: p.vars().to_string(),
            right: ps.vars().to_string(),
        });
    }
    cover::validate_df(p, "P")?;
    cover::validate_df(ps, "P_S")?;
    cover::validate_df(s.vsa(), "S")?;
    if !s.is_disjoint() {
        return Err(FastPathError::new("splitter is not disjoint").into());
    }
    Ok(split_correct_df_prechecked(p, ps, s))
}

/// [`split_correct_df`] minus the precondition validation: the caller
/// guarantees `p`, `ps`, and `s` are deterministic functional automata
/// with identical `P`/`P_S` variables and a **disjoint** splitter —
/// verdicts are meaningless otherwise.
///
/// This is the batch certifier's fast-path entry point
/// (`splitc_exec::certify`): across a fleet, the splitter preconditions
/// are established once per batch and the spanner preconditions once
/// per distinct spanner, so per-pair work is just the Lemma 5.6 cover
/// check plus the guarded product search.
pub fn split_correct_df_prechecked(p: &Vsa, ps: &Vsa, s: &Splitter) -> Verdict {
    // Step 1: cover condition (Lemma 5.6) — necessary by Lemma 5.3.
    match cover::cover_condition_df_prechecked(p, s) {
        Verdict::Holds => {}
        fails => return fails,
    }

    // Step 2: guarded product search for a distinguishing ref-word.
    guarded_product_check(p, ps, s)
}

/// Polynomial-time self-splittability (Theorem 5.17).
pub fn self_splittable_df(p: &Vsa, s: &Splitter) -> Result<Verdict, CertError> {
    split_correct_df(p, p, s)
}

/// The product machinery shared by the fast path and by the annotated
/// variant: compares, over all ref-words with variable operations inside
/// the guessed split window, acceptance of `P` against acceptance of
/// `P_S` on the window content.
pub(crate) fn guarded_product_check(p: &Vsa, ps: &Vsa, s: &Splitter) -> Verdict {
    let pieces = ProductPieces::build(p, ps, s);
    pieces.compare()
}

/// Prebuilt automata for the guarded product comparison.
pub(crate) struct ProductPieces {
    ext: ExtAlphabet,
    x: splitc_spanner::vars::VarId,
    p_vars: VarTable,
    /// `S ∩ G ∩ P`: ref-words encoding (d, t ∈ P(d), s ∈ S(d)) with the
    /// tuple's operations inside the window.
    l1: Nfa,
    /// `S ∩ W`: ref-words encoding (d, t, s ∈ S(d)) whose window content
    /// is an output of `P_S` on the chunk.
    l2: Nfa,
}

impl ProductPieces {
    pub(crate) fn build(p: &Vsa, ps: &Vsa, s: &Splitter) -> ProductPieces {
        // Merged variable table: SVars(P) plus a fresh splitter variable.
        let xname = util::fresh_var_name(p.vars(), "__split");
        let mut names: Vec<String> = p.vars().names().to_vec();
        names.push(xname.clone());
        let merged = VarTable::new(names).expect("fresh name cannot collide");
        let x = merged.lookup(&xname).expect("just inserted");

        let mut masks = p.byte_masks();
        masks.extend(ps.byte_masks());
        masks.extend(s.vsa().byte_masks());
        let ext = ExtAlphabet::from_masks(merged.clone(), &masks);

        // S with its variable renamed to the fresh name.
        let s_renamed = s
            .vsa()
            .replace_var_table(VarTable::new([xname.clone()]).expect("single name"))
            .expect("splitter has one variable");

        let ep = util::normal_evsa(p);
        let eps_ = util::normal_evsa(ps);
        let es = util::normal_evsa(&s_renamed);

        let x_loops = vec![ext.op_sym(VarOp::Open(x)), ext.op_sym(VarOp::Close(x))];
        let v_loops: Vec<Sym> = p
            .vars()
            .iter()
            .flat_map(|v| {
                let mv = ext
                    .vars()
                    .lookup(p.vars().name(v))
                    .expect("merged table contains P vars");
                [ext.op_sym(VarOp::Open(mv)), ext.op_sym(VarOp::Close(mv))]
            })
            .collect();

        let np = util::lifted_nfa(&ep, &ext, &x_loops);
        let ns = util::lifted_nfa(&es, &ext, &v_loops);
        let g = guard_nfa(&ext, x, &v_loops);
        let w = window_nfa(&eps_, &ext, x);

        let np = np.remove_eps();
        let ns = ns.remove_eps();
        let g = g.remove_eps();
        let w = w.remove_eps();

        let l1 = ns.intersect(&g).remove_eps().intersect(&np).trim();
        let l2 = ns.intersect(&w).trim();
        ProductPieces {
            ext,
            x,
            p_vars: p.vars().clone(),
            l1,
            l2,
        }
    }

    pub(crate) fn compare(&self) -> Verdict {
        if let Containment::Counterexample(word) = ops::contains(&self.l1, &self.l2) {
            return self.decode(&word, true);
        }
        if let Containment::Counterexample(word) = ops::contains(&self.l2, &self.l1) {
            return self.decode(&word, false);
        }
        Verdict::Holds
    }

    fn decode(&self, word: &[Sym], left_has_it: bool) -> Verdict {
        let (doc, tuple, split) = util::decode_split_witness(&self.ext, self.x, &self.p_vars, word)
            .expect("guarded product words contain a complete window");
        Verdict::Fails(CounterExample {
            doc,
            tuple,
            split: Some(split),
            left_has_it,
            reason: if left_has_it {
                "P produces a tuple inside a split on which P_S disagrees".into()
            } else {
                "P_S produces a tuple on a split that P does not produce".into()
            },
        })
    }
}

/// The guard `G`: variable operations of `SVars(P)` may only occur
/// between `x⊢` and `⊣x` (justified by the cover condition + disjointness
/// — paper's TM "rejects runs with ΓV symbols outside the window").
fn guard_nfa(ext: &ExtAlphabet, x: splitc_spanner::vars::VarId, v_loops: &[Sym]) -> Nfa {
    let mut nfa = Nfa::new(ext.alphabet_size());
    let p1 = nfa.add_state();
    let p2 = nfa.add_state();
    let p3 = nfa.add_state();
    nfa.add_start(p1);
    nfa.set_final(p3, true);
    let classes: Vec<Sym> = (0..256u16)
        .map(|b| ext.class_sym_of_byte(b as u8))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for &c in &classes {
        nfa.add_transition(p1, c, p1);
        nfa.add_transition(p2, c, p2);
        nfa.add_transition(p3, c, p3);
    }
    for &v in v_loops {
        nfa.add_transition(p2, v, p2);
    }
    nfa.add_transition(p1, ext.op_sym(VarOp::Open(x)), p2);
    nfa.add_transition(p2, ext.op_sym(VarOp::Close(x)), p3);
    nfa
}

/// The window automaton `W`: bytes, then `x⊢`, then a run of `P_S` on the
/// window content, then `⊣x` from accepting `P_S` states, then bytes.
fn window_nfa(
    ps: &splitc_spanner::evsa::EVsa,
    ext: &ExtAlphabet,
    x: splitc_spanner::vars::VarId,
) -> Nfa {
    let mut nfa = util::lifted_nfa(ps, ext, &[]);
    let inner_start = nfa
        .starts()
        .first()
        .copied()
        .expect("lifted NFA has a start");
    let inner_finals: Vec<StateId> = nfa.final_states().collect();
    let p1 = nfa.add_state();
    let p3 = nfa.add_state();
    let classes: Vec<Sym> = (0..256u16)
        .map(|b| ext.class_sym_of_byte(b as u8))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for &c in &classes {
        nfa.add_transition(p1, c, p1);
        nfa.add_transition(p3, c, p3);
    }
    nfa.add_transition(p1, ext.op_sym(VarOp::Open(x)), inner_start);
    for f in inner_finals {
        nfa.set_final(f, false);
        nfa.add_transition(f, ext.op_sym(VarOp::Close(x)), p3);
    }
    nfa.set_final(p3, true);
    // Replace the start: only p1 starts.
    let mut out = Nfa::new(nfa.alphabet_size());
    for _ in 0..nfa.num_states() {
        out.add_state();
    }
    for q in 0..nfa.num_states() as StateId {
        out.set_final(q, nfa.is_final(q));
        for &(sym, r) in nfa.transitions_from(q) {
            out.add_transition(q, sym, r);
        }
        for &r in nfa.eps_from(q) {
            out.add_eps(q, r);
        }
    }
    out.add_start(p1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::eval::eval;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;

    fn vsa(p: &str) -> Vsa {
        Rgx::parse(p).unwrap().to_vsa().unwrap()
    }

    fn dvsa(p: &str) -> Vsa {
        vsa(p).determinize()
    }

    #[test]
    fn http_example_from_paper_section_3_1() {
        // Messages separated by blank lines; request line starts with
        // GET. P finds request lines by the G-E-T prefix — self-splittable
        // by the message splitter.
        let p = vsa("(.*\\n\\n|)x{GET [a-z]+}(\\n.*|)");
        let s = splitter::http_messages();
        // Sanity: P extracts from a two-message log.
        let doc = b"GET alpha\nHost h\n\nGET beta\nHost i";
        assert_eq!(eval(&p, doc).len(), 2);
        assert!(self_splittable(&p, &s).unwrap().holds());
    }

    #[test]
    fn sentence_person_extractor_is_self_splittable() {
        // "Spanners that do not look beyond the sentence level" (§3.1):
        // every a-run lies within one sentence (a+ cannot contain '.'),
        // and the per-sentence union reproduces exactly the same spans.
        let p = vsa(".*x{a+}.*");
        let s = splitter::sentences();
        assert!(self_splittable(&p, &s).unwrap().holds());
    }

    #[test]
    fn crossing_extractor_is_not_self_splittable() {
        let p = vsa(".*x{a\\.a}.*");
        let s = splitter::sentences();
        match self_splittable(&p, &s).unwrap() {
            Verdict::Fails(cex) => {
                assert!(cex.left_has_it);
                // The witness tuple crosses a sentence boundary.
                let rel = eval(&p, &cex.doc);
                assert!(rel.contains(&cex.tuple));
            }
            Verdict::Holds => panic!("crossing extractor can't be split"),
        }
    }

    #[test]
    fn split_correct_with_rewritten_split_spanner() {
        // Paper §3.1 HTTP example: P finds the line at a message start
        // (doc start or after a blank line); P_S finds the first line of
        // the chunk. P = P_S ∘ S (messages).
        let p = vsa("(.*\\n\\n|)x{[a-z]+}(\\n.*|)");
        let ps = vsa("x{[a-z]+}(\\n.*|)");
        let s = splitter::http_messages();
        assert!(split_correct(&p, &ps, &s).unwrap().holds());
        // The variant that *requires* a preceding blank line is not
        // self-splittable: chunks contain no blank lines.
        let p2 = vsa(".*\\n\\nx{[a-z]+}(\\n.*|)");
        assert!(!self_splittable(&p2, &s).unwrap().holds());
    }

    #[test]
    fn fast_path_agrees_with_general() {
        let cases: &[(&str, &str)] = &[
            (".*x{a+}.*", ".*x{a+}.*"),
            (".*x{a\\.a}.*", ".*x{a\\.a}.*"),
            (".*x{ab}.*", "x{ab}.*"),
        ];
        let s = splitter::sentences();
        let sd = s.determinize();
        for (ppat, pspat) in cases {
            let p = dvsa(ppat);
            let ps = dvsa(pspat);
            let slow = split_correct(&p, &ps, &s).unwrap().holds();
            let fast = split_correct_df(&p, &ps, &sd).unwrap().holds();
            assert_eq!(slow, fast, "P={ppat} PS={pspat}");
        }
    }

    #[test]
    fn fast_path_requires_preconditions() {
        let p = vsa(".*x{a}.*|.*x{aa}.*");
        let s = splitter::sentences();
        if !p.is_deterministic() {
            assert!(split_correct_df(&p, &p, &s).is_err());
        }
        let p2 = dvsa(".*x{a}.*");
        assert!(split_correct_df(&p2, &p2, &splitter::ngrams(2).determinize()).is_err());
    }

    #[test]
    fn ngram_proximity_example_from_paper() {
        // §3.1: email/phone at most three tokens apart is self-splittable
        // by N-grams for N >= 5 but not for N < 5. Scaled down: a pair of
        // adjacent tokens x{t} y{t} is self-splittable by 2-grams but not
        // by 1-grams. Note: N-gram splitters are not disjoint, so only
        // the general procedure applies.
        let tok = "[ab]+";
        let p = vsa(&format!(
            "(.*[^A-Za-z0-9]|)e{{{tok}}} p{{{tok}}}([^A-Za-z0-9].*|)"
        ));
        assert!(self_splittable(&p, &splitter::ngrams(2)).unwrap().holds());
        assert!(!self_splittable(&p, &splitter::ngrams(1)).unwrap().holds());
    }

    #[test]
    fn splitter_variable_name_collision_is_handled() {
        // P uses a variable named like the splitter's.
        let p = vsa(".*x{a+}.*");
        let s = Splitter::parse("(.*\\.)?x{[^.]+}(\\..*)?").unwrap();
        assert_eq!(s.var_name(), "x");
        assert!(self_splittable(&p, &s).unwrap().holds());
        let pd = dvsa(".*x{a+}.*");
        assert!(split_correct_df(&pd, &pd, &s.determinize())
            .unwrap()
            .holds());
    }

    #[test]
    fn boundary_empty_span_corner() {
        // Documented deviation (module docs): a tuple of empty spans on
        // the boundary between two adjacent splits is covered by both.
        // P = a y{} b (empty span between 'a' and 'b'); S = x{a}b | a x{b};
        // P_S = a y{} | ε... we pick P_S producing the tuple only from
        // the *second* chunk: P_S = y{}b.
        let p = vsa("a(y{})b");
        let ps = vsa("y{}b");
        let s = Splitter::parse("x{a}b|a(x{b})").unwrap().determinize();
        assert!(s.is_disjoint());
        // Exact semantics: P = P_S ∘ S holds (the tuple comes from the
        // second chunk).
        let exact = split_correct(&p, &ps, &s).unwrap();
        assert!(exact.holds(), "exact: {exact:?}");
        // The paper's pointwise procedure flags the first chunk.
        let pd = p.determinize();
        let psd = ps.determinize();
        let fast = split_correct_df(&pd, &psd, &s).unwrap();
        assert!(
            !fast.holds(),
            "pointwise check is strictly stronger on this corner"
        );
    }

    #[test]
    fn whole_document_splitter_reduces_to_equivalence() {
        // With S = whole document, split-correctness is P = P_S.
        let s = splitter::whole_document();
        let p = vsa(".*x{ab}.*");
        let q = vsa(".*x{ab}.*");
        assert!(split_correct(&p, &q, &s).unwrap().holds());
        let r = vsa("x{ab}.*");
        assert!(!split_correct(&p, &r, &s).unwrap().holds());
    }
}
